"""Fault-tolerant execution: retry/backoff, chaos, budgets, checkpoints.

The headline assertions are *bit-identical recovery*: a run disturbed by
injected faults — worker kills, transient failures, timeouts, a mid-grid
abort — must reproduce the undisturbed results float-for-float, because
every task is a pure function of its seeded payload.  Chaos injection is
deterministic (:class:`~repro.core.resilience.ChaosPolicy`), so these
suites are reproducible, not flaky-by-design.
"""

from __future__ import annotations

import os
import pickle
import warnings

import pytest

from repro.cfs import abe_parameters
from repro.cfs.cluster import StorageModel
from repro.core import (
    SAN,
    CellFailure,
    ChaosError,
    ChaosPolicy,
    Exponential,
    RetryPolicy,
    SimulationBudgetError,
    SimulationError,
    Simulator,
    TaskFailure,
    TaskTimeoutError,
    flatten,
    replicate_runs,
    run_tasks_supervised,
)
from repro.core.errors import InstantaneousLoopError
from repro.core.rewards import RateReward
from repro.experiments import SweepCell, replication_cell, run_sweep
from repro.experiments.runner import format_cell_failures
from repro.experiments.sweep import SweepResult, cell_digest

from _helpers import build_two_state_san, square_cell_fn

HOURS = 1200.0


@pytest.fixture(autouse=True)
def _isolate_chaos_env(monkeypatch):
    """Attempt-count assertions assume no ambient fault injection (the CI
    chaos job exports ``REPRO_CHAOS`` process-wide; the env-specific
    tests below re-set it explicitly)."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)


# ----------------------------------------------------------------------
# module-level task/cell functions (workers unpickle them by name)
# ----------------------------------------------------------------------
def _square_task(x: int) -> int:
    return x * x


def _poisoned_cell(x: int) -> int:
    raise ValueError(f"poisoned cell {x}")


def _journaled_cell(x: int, log_dir: str) -> int:
    """Square ``x``, appending one line to a per-cell execution log."""
    with open(os.path.join(log_dir, f"{x}.log"), "a") as fh:
        fh.write("ran\n")
    return x * x


def _executions(log_dir: str, x: int) -> int:
    try:
        with open(os.path.join(log_dir, f"{x}.log")) as fh:
            return len(fh.readlines())
    except FileNotFoundError:
        return 0


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_retry_transient_not_model_bugs(self):
        policy = RetryPolicy()
        assert policy.should_retry(ChaosError("x"), 1)
        assert policy.should_retry(TaskTimeoutError("x"), 2)
        assert policy.should_retry(OSError("x"), 1)
        assert not policy.should_retry(SimulationError("model bug"), 1)
        assert not policy.should_retry(ValueError("model bug"), 1)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(ChaosError("x"), 1)
        assert not policy.should_retry(ChaosError("x"), 2)

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=2.0, max_delay_s=0.5)
        assert policy.delay_s("k", 1) == 0.0
        d2 = policy.delay_s("k", 2)
        d3 = policy.delay_s("k", 3)
        assert policy.delay_s("k", 2) == d2  # pure function of (key, attempt)
        assert policy.delay_s("other", 2) != d2  # jitter varies by key
        assert 0.0 < d2 < d3 <= 0.5 * 1.1

    def test_no_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=3.0, jitter=0.0)
        assert policy.delay_s("k", 2) == 0.1
        assert policy.delay_s("k", 3) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(SimulationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)


# ----------------------------------------------------------------------
# ChaosPolicy
# ----------------------------------------------------------------------
class TestChaosPolicy:
    def test_fail_first_n_attempts(self):
        chaos = ChaosPolicy(fail_tasks={"t": 2})
        with pytest.raises(ChaosError):
            chaos.apply("t", 1, in_worker=False)
        with pytest.raises(ChaosError):
            chaos.apply("t", 2, in_worker=False)
        chaos.apply("t", 3, in_worker=False)  # clean from attempt 3

    def test_fail_forever_with_minus_one(self):
        chaos = ChaosPolicy(fail_tasks={"t": -1})
        for attempt in (1, 2, 7):
            with pytest.raises(ChaosError):
                chaos.apply("t", attempt, in_worker=False)

    def test_wildcard_matches_every_task(self):
        chaos = ChaosPolicy(fail_tasks={"*": 1})
        with pytest.raises(ChaosError):
            chaos.apply(("reps", 0, 3), 1, in_worker=False)
        chaos.apply(("reps", 0, 3), 2, in_worker=False)

    def test_serial_kill_raises_instead_of_exiting(self):
        chaos = ChaosPolicy(kill_tasks=frozenset({"t"}))
        with pytest.raises(ChaosError, match="serial"):
            chaos.apply("t", 1, in_worker=False)
        chaos.apply("t", 2, in_worker=False)  # kill fires on attempt 1 only

    def test_untargeted_task_untouched(self):
        chaos = ChaosPolicy(fail_tasks={"t": -1}, kill_tasks=frozenset({"t"}))
        chaos.apply("other", 1, in_worker=False)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            '{"kill": ["a"], "fail": {"*": 2}, "delay": {"b": 0.5}}',
        )
        chaos = ChaosPolicy.from_env()
        assert chaos.kill_tasks == frozenset({"a"})
        assert chaos.fail_tasks == {"*": 2}
        assert chaos.delay_tasks == {"b": 0.5}

    def test_from_env_absent_or_invalid(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosPolicy.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "not json")
        with pytest.raises(SimulationError, match="JSON"):
            ChaosPolicy.from_env()
        monkeypatch.setenv("REPRO_CHAOS", "[1]")
        with pytest.raises(SimulationError, match="object"):
            ChaosPolicy.from_env()


# ----------------------------------------------------------------------
# run_tasks_supervised
# ----------------------------------------------------------------------
class TestSupervisedExecutor:
    TASKS = [(i, i) for i in range(6)]
    WANT = {i: i * i for i in range(6)}

    def test_serial_plain(self):
        out = run_tasks_supervised(self.TASKS, _square_task, n_jobs=1)
        assert out == self.WANT

    def test_parallel_plain(self):
        out = run_tasks_supervised(self.TASKS, _square_task, n_jobs=3)
        assert out == self.WANT

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            run_tasks_supervised([("a", 1), ("a", 2)], _square_task, n_jobs=1)

    def test_chaos_failures_recovered_serial(self):
        chaos = ChaosPolicy(fail_tasks={"*": 1})
        out = run_tasks_supervised(
            self.TASKS,
            _square_task,
            n_jobs=1,
            chaos=chaos,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        assert out == self.WANT

    def test_chaos_failures_recovered_parallel(self):
        chaos = ChaosPolicy(fail_tasks={"*": 1})
        out = run_tasks_supervised(
            self.TASKS,
            _square_task,
            n_jobs=2,
            chaos=chaos,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        assert out == self.WANT

    def test_worker_kill_recovered(self):
        """A hard worker kill breaks the pool; supervision rebuilds it and
        resubmits only the unfinished tasks."""
        chaos = ChaosPolicy(kill_tasks=frozenset({"3"}))
        out = run_tasks_supervised(
            self.TASKS,
            _square_task,
            n_jobs=2,
            chaos=chaos,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        assert out == self.WANT

    def test_exhausted_raises_with_cause(self):
        chaos = ChaosPolicy(fail_tasks={"2": -1})
        with pytest.raises(SimulationError, match="ChaosError") as info:
            run_tasks_supervised(
                self.TASKS,
                _square_task,
                n_jobs=1,
                chaos=chaos,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            )
        assert isinstance(info.value.__cause__, ChaosError)

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_collect_partial_results(self, n_jobs):
        chaos = ChaosPolicy(fail_tasks={"2": -1})
        out = run_tasks_supervised(
            self.TASKS,
            _square_task,
            n_jobs=n_jobs,
            chaos=chaos,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            on_error="collect",
        )
        failure = out[2]
        assert isinstance(failure, TaskFailure)
        assert failure.attempts == 2
        assert failure.error_type == "ChaosError"
        for i in (0, 1, 3, 4, 5):
            assert out[i] == i * i

    def test_nonretryable_fails_fast(self):
        out = run_tasks_supervised(
            [("a", 1)], _poisoned_cell, n_jobs=1, on_error="collect"
        )
        assert out["a"].attempts == 1
        assert out["a"].error_type == "ValueError"

    def test_timeout_kills_and_retries(self):
        """A hung attempt trips the watchdog; the retry runs undelayed
        (chaos delays fire on attempt 1 only) and completes."""
        chaos = ChaosPolicy(delay_tasks={"1": 5.0})
        out = run_tasks_supervised(
            self.TASKS,
            _square_task,
            n_jobs=2,
            chaos=chaos,
            retry=RetryPolicy(timeout_s=0.5, base_delay_s=0.0),
        )
        assert out == self.WANT

    def test_on_complete_sees_every_success(self):
        seen = {}
        run_tasks_supervised(
            self.TASKS,
            _square_task,
            n_jobs=1,
            on_complete=lambda key, result: seen.__setitem__(key, result),
        )
        assert seen == self.WANT

    def test_env_chaos_applies_and_explicit_empty_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"fail": {"0": -1}}')
        out = run_tasks_supervised(
            [(0, 0)],
            _square_task,
            n_jobs=1,
            retry=RetryPolicy(max_attempts=1),
            on_error="collect",
        )
        assert isinstance(out[0], TaskFailure)
        # An explicit (empty) policy wins over the environment.
        out = run_tasks_supervised(
            [(0, 0)], _square_task, n_jobs=1, chaos=ChaosPolicy()
        )
        assert out == {0: 0}

    def test_invalid_on_error(self):
        with pytest.raises(SimulationError, match="on_error"):
            run_tasks_supervised([("a", 1)], _square_task, n_jobs=1, on_error="x")


# ----------------------------------------------------------------------
# Simulator run budgets
# ----------------------------------------------------------------------
class TestRunBudgets:
    def test_max_events_terminates_with_state(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=7, max_events=50)
        with pytest.raises(SimulationBudgetError) as info:
            sim.run(1e12)
        err = info.value
        assert err.budget == "max_events"
        assert err.limit == 50
        assert err.n_events == 50
        assert err.sim_time > 0.0
        assert err.marking.get("comp/up") in (0, 1)

    def test_max_wall_terminates(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=7, max_wall_s=0.05)
        with pytest.raises(SimulationBudgetError) as info:
            sim.run(1e15)
        err = info.value
        assert err.budget == "max_wall_s"
        assert err.limit == 0.05
        assert err.n_events > 0

    def test_reference_engine_honors_budget(self, two_state_model):
        sim = Simulator(
            two_state_model, base_seed=7, engine="reference", max_events=10
        )
        with pytest.raises(SimulationBudgetError) as info:
            sim.run(1e12)
        assert info.value.n_events == 10

    def test_budget_under_limit_is_bit_identical(self, two_state_model):
        """An untripped budget must not perturb the trajectory, only the
        loop choice (the plain loop stays budget-free)."""
        rw = RateReward("up", lambda m: float(m["comp/up"] == 1))
        plain = Simulator(two_state_model, base_seed=9)
        r1 = plain.run(2000.0, rewards=[rw])
        budgeted = Simulator(two_state_model, base_seed=9, max_events=10**9)
        r2 = budgeted.run(2000.0, rewards=[rw])
        assert r1.n_events == r2.n_events
        assert r1["up"].time_average == r2["up"].time_average

    def test_plain_loop_untouched_without_budget(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=3)
        sim.run(500.0)
        assert sim.last_loop == "plain"
        sim2 = Simulator(two_state_model, base_seed=3, max_events=10**9)
        sim2.run(500.0)
        assert sim2.last_loop == "observed"

    def test_validation(self, two_state_model):
        with pytest.raises(SimulationError, match="max_events"):
            Simulator(two_state_model, max_events=0)
        with pytest.raises(SimulationError, match="max_wall_s"):
            Simulator(two_state_model, max_wall_s=-1.0)

    def test_budget_error_survives_pickling(self, two_state_model):
        """Budget errors cross process boundaries (sweep workers)."""
        sim = Simulator(two_state_model, base_seed=7, max_events=5)
        with pytest.raises(SimulationBudgetError) as info:
            sim.run(1e12)
        clone = pickle.loads(pickle.dumps(info.value))
        assert isinstance(clone, SimulationBudgetError)


# ----------------------------------------------------------------------
# instantaneous-loop cap (regression for Simulator(max_instant_chain=...))
# ----------------------------------------------------------------------
def _vanishing_loop_model():
    """Two instantaneous activities that re-enable each other forever."""
    san = SAN("loop")
    san.place("a", 0)
    san.place("trigger", 0)

    def arm(m, rng):
        m["trigger"] = 1

    san.timed(
        "start",
        Exponential(1.0),
        enabled=lambda m: m["trigger"] == 0,
        effect=arm,
    )
    san.instant(
        "flip_up",
        enabled=lambda m: m["trigger"] == 1 and m["a"] == 0,
        effect=lambda m, rng: m.__setitem__("a", 1),
    )
    san.instant(
        "flip_down",
        enabled=lambda m: m["trigger"] == 1 and m["a"] == 1,
        effect=lambda m, rng: m.__setitem__("a", 0),
    )
    return flatten(san)


def _finite_cascade_model(depth: int):
    """One instant that re-enables itself ``depth`` times, then stops."""
    san = SAN("cascade")
    san.place("todo", 0)

    def load(m, rng):
        m["todo"] = depth

    san.timed(
        "start", Exponential(1.0), enabled=lambda m: m["todo"] == 0, effect=load
    )
    san.instant(
        "step",
        enabled=lambda m: m["todo"] > 0,
        effect=lambda m, rng: m.__setitem__("todo", m["todo"] - 1),
    )
    return flatten(san)


class TestInstantChainCap:
    def test_vanishing_loop_trips_configured_cap(self):
        sim = Simulator(_vanishing_loop_model(), base_seed=1, max_instant_chain=30)
        with pytest.raises(InstantaneousLoopError):
            sim.run(10.0)

    def test_cap_is_configurable(self):
        """A legitimate deep cascade passes once the cap clears its depth."""
        model = _finite_cascade_model(depth=50)
        with pytest.raises(InstantaneousLoopError):
            Simulator(model, base_seed=1, max_instant_chain=30).run(0.5)
        Simulator(model, base_seed=1, max_instant_chain=100).run(0.5)

    def test_cap_attribute_exposed(self, two_state_model):
        assert Simulator(two_state_model).max_instant_chain == 100_000
        assert Simulator(two_state_model, max_instant_chain=7).max_instant_chain == 7


# ----------------------------------------------------------------------
# replication pools under chaos (bit-identical recovery)
# ----------------------------------------------------------------------
def _replication_samples(n_jobs, chaos=None, retry=None, n_replications=6):
    model = flatten(build_two_state_san())
    sim = Simulator(model, base_seed=2008)
    rw = RateReward("avail", lambda m: float(m["comp/up"] == 1))
    result = replicate_runs(
        sim,
        HOURS,
        n_replications=n_replications,
        rewards=[rw],
        n_jobs=n_jobs,
        chaos=chaos,
        retry=retry,
    )
    return {m: result.samples(m) for m in result.metrics}


class TestReplicationRecovery:
    def test_worker_kill_bit_identical_to_serial(self):
        """An OOM-style worker kill mid-pool recovers to exactly the
        serial samples (replication k always draws stream k)."""
        serial = _replication_samples(1)
        chaos = ChaosPolicy(kill_tasks=frozenset({"('reps', 2, 2)"}))
        recovered = _replication_samples(
            2, chaos=chaos, retry=RetryPolicy(base_delay_s=0.0)
        )
        assert recovered == serial

    def test_transient_failures_bit_identical_to_serial(self):
        serial = _replication_samples(1)
        chaos = ChaosPolicy(fail_tasks={"*": 1})
        recovered = _replication_samples(
            2, chaos=chaos, retry=RetryPolicy(base_delay_s=0.0)
        )
        assert recovered == serial

    def test_exhausted_chunk_raises(self):
        chaos = ChaosPolicy(fail_tasks={"*": -1})
        with pytest.raises(SimulationError, match="replication chunk"):
            _replication_samples(
                2, chaos=chaos, retry=RetryPolicy(max_attempts=2, base_delay_s=0.0)
            )


# ----------------------------------------------------------------------
# fork-unavailable degradation
# ----------------------------------------------------------------------
class TestSerialDegradation:
    @pytest.fixture(autouse=True)
    def _no_fork(self, monkeypatch):
        from repro.core import parallel

        monkeypatch.setattr(parallel, "_fork_context", lambda: None)
        monkeypatch.setattr(parallel, "_FALLBACK_WARNED", False)

    def test_pool_context_warns_once(self):
        from repro.core.parallel import pool_context

        with pytest.warns(RuntimeWarning, match="fork"):
            pool_context()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool_context()  # second call is silent

    def test_inherit_mode_degrades_to_serial_with_warning(self):
        serial = _replication_samples(1)
        with pytest.warns(RuntimeWarning, match="serial"):
            degraded = _replication_samples(2)
        assert degraded == serial

    def test_inherit_mode_raises_when_fallback_disabled(self):
        model = flatten(build_two_state_san())
        sim = Simulator(model, base_seed=2008)
        rw = RateReward("avail", lambda m: float(m["comp/up"] == 1))
        with pytest.raises(SimulationError, match="serial_fallback"):
            replicate_runs(
                sim,
                HOURS,
                n_replications=4,
                rewards=[rw],
                n_jobs=2,
                serial_fallback=False,
            )


# ----------------------------------------------------------------------
# sweeps: partial results, chaos recovery, checkpoint/resume
# ----------------------------------------------------------------------
def _storage_cells(n=3, reps=2):
    params = abe_parameters()
    return [
        replication_cell(
            ("cell", i), StorageModel.spec(params, 96 + i), HOURS, reps
        )
        for i in range(n)
    ]


def _sweep_samples(result):
    return {
        key: {m: result[key].samples(m) for m in result[key].metrics}
        for key in result
    }


class TestSweepResilience:
    def test_collect_keeps_healthy_cells(self):
        cells = [SweepCell(i, square_cell_fn, (i,)) for i in range(4)]
        cells[2] = SweepCell(2, _poisoned_cell, (2,))
        result = run_sweep(cells, n_jobs=2, on_error="collect")
        assert list(result.failures) == [2]
        assert result.completed == {0: 0, 1: 1, 3: 9}
        failure = result.failures[2]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "ValueError"
        with pytest.raises(SimulationError, match="failed after"):
            result[2]
        assert "FAILED CELLS (1)" in format_cell_failures(result.failures)

    def test_raise_mode_aborts(self):
        cells = [SweepCell("ok", square_cell_fn, (1,)), SweepCell("bad", _poisoned_cell, (0,))]
        with pytest.raises(SimulationError, match="sweep cell"):
            run_sweep(cells, n_jobs=1)

    def test_worker_kill_recovery_bit_identical(self):
        """A chaos-killed sweep worker recovers to the serial results."""
        serial = run_sweep(_storage_cells(), n_jobs=1)
        chaos = ChaosPolicy(kill_tasks=frozenset({str(("cell", 1))}))
        recovered = run_sweep(
            _storage_cells(),
            n_jobs=2,
            chaos=chaos,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        assert _sweep_samples(recovered) == _sweep_samples(serial)

    def test_checkpoint_journal_written_and_loaded(self, tmp_path):
        d = str(tmp_path / "ckpt")
        log = str(tmp_path / "log")
        os.makedirs(log)
        cells = [
            SweepCell(i, _journaled_cell, (i,), {"log_dir": log}) for i in range(3)
        ]
        first = run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        assert dict(first) == {0: 0, 1: 1, 2: 4}
        assert all(_executions(log, i) == 1 for i in range(3))
        # Resume: every cell loads from the journal, none re-executes.
        second = run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        assert dict(second) == dict(first)
        assert all(_executions(log, i) == 1 for i in range(3))

    def test_resume_after_midgrid_kill_equals_uninterrupted(self, tmp_path):
        """Kill the grid mid-way (worker kill + no retries), rerun with
        --resume: completed cells load from the journal, only unfinished
        cells execute, and the final grid equals an uninterrupted run."""
        d = str(tmp_path / "ckpt")
        log = str(tmp_path / "log")
        os.makedirs(log)
        cells = [
            SweepCell(i, _journaled_cell, (i,), {"log_dir": log}) for i in range(5)
        ]
        uninterrupted = run_sweep(cells, n_jobs=1)
        runs_before = {i: _executions(log, i) for i in range(5)}

        chaos = ChaosPolicy(kill_tasks=frozenset({"3"}))
        with pytest.raises(SimulationError):
            run_sweep(
                cells,
                n_jobs=2,
                chaos=chaos,
                retry=RetryPolicy(max_attempts=1),
                checkpoint_dir=d,
            )
        journaled = len(list((tmp_path / "ckpt").glob("*.pkl")))
        assert 0 < journaled < 5  # partial progress survived the abort

        resumed = run_sweep(cells, n_jobs=2, checkpoint_dir=d)
        assert dict(resumed) == dict(uninterrupted)
        # Total executions across kill + resume: journaled cells ran once
        # more in the aborted run OR loaded from the journal on resume —
        # either way nobody ran after being journaled.
        for i in range(5):
            assert _executions(log, i) <= runs_before[i] + 2

    def test_resume_tolerates_different_worker_split(self, tmp_path):
        """The checkpoint digest excludes the inner-jobs split, so a grid
        checkpointed serially resumes under nested parallelism."""
        d = str(tmp_path / "ckpt")
        serial = run_sweep(_storage_cells(n=2), n_jobs=1, checkpoint_dir=d)
        resumed = run_sweep(_storage_cells(n=2), n_jobs=8, checkpoint_dir=d)
        assert _sweep_samples(resumed) == _sweep_samples(serial)

    def test_cell_digest_excludes_inner_jobs(self):
        cell = _storage_cells(n=1)[0]
        assert cell_digest(cell) == cell_digest(cell.with_inner_jobs(4))
        other = _storage_cells(n=2)[1]
        assert cell_digest(cell) != cell_digest(other)

    def test_failed_cells_not_journaled(self, tmp_path):
        d = tmp_path / "ckpt"
        cells = [SweepCell("bad", _poisoned_cell, (1,))]
        result = run_sweep(cells, n_jobs=1, on_error="collect", checkpoint_dir=str(d))
        assert list(result.failures) == ["bad"]
        assert list(d.glob("*.pkl")) == []
        # ... so a resumed run retries them.
        fixed = [SweepCell("bad", square_cell_fn, (1,))]
        # (different fn -> different digest; the point is the journal has
        # no poisoned entry to satisfy any lookup)
        assert dict(run_sweep(fixed, n_jobs=1, checkpoint_dir=str(d))) == {"bad": 1}

    def test_corrupt_journal_entry_recomputed(self, tmp_path):
        d = tmp_path / "ckpt"
        cells = [SweepCell("a", square_cell_fn, (3,))]
        run_sweep(cells, n_jobs=1, checkpoint_dir=str(d))
        (entry,) = d.glob("*.pkl")
        entry.write_bytes(b"truncated garbage")
        result = run_sweep(cells, n_jobs=1, checkpoint_dir=str(d))
        assert dict(result) == {"a": 9}

    def test_sweep_result_failures_empty_on_clean_run(self):
        result = run_sweep([SweepCell("a", square_cell_fn, (2,))])
        assert result.failures == {}
        assert result.completed == {"a": 4}
        assert isinstance(result, SweepResult)


# ----------------------------------------------------------------------
# checkpoint-journal integrity (digest framing; PR 6 resume semantics)
# ----------------------------------------------------------------------
class TestJournalCorruption:
    """A damaged journal entry is detected, reported once, and recomputed.

    The journal frames every entry with a SHA-256 of the pickled payload,
    so even corruption that still unpickles cleanly cannot smuggle a
    wrong result into a resumed grid.
    """

    def _journal_one(self, tmp_path):
        d = str(tmp_path / "ckpt")
        log = str(tmp_path / "log")
        os.makedirs(log, exist_ok=True)
        cells = [SweepCell(7, _journaled_cell, (7,), {"log_dir": log})]
        first = run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        assert dict(first) == {7: 49}
        assert _executions(log, 7) == 1
        (entry,) = (tmp_path / "ckpt").glob("*.pkl")
        return d, log, cells, entry

    def _assert_recomputed(self, d, log, cells, reason):
        with pytest.warns(RuntimeWarning, match=reason) as caught:
            result = run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        hits = [w for w in caught if "recomputing the cell" in str(w.message)]
        assert len(hits) == 1
        assert "cell 7" in str(hits[0].message)
        assert dict(result) == {7: 49}

    def test_bitflip_payload_digest_mismatch(self, tmp_path):
        d, log, cells, entry = self._journal_one(tmp_path)
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF  # single bit-level corruption deep in the payload
        entry.write_bytes(bytes(blob))
        self._assert_recomputed(d, log, cells, "payload digest mismatch")
        assert _executions(log, 7) == 2

    def test_truncated_entry(self, tmp_path):
        d, log, cells, entry = self._journal_one(tmp_path)
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) - 3])  # lose the payload tail
        self._assert_recomputed(d, log, cells, "payload digest mismatch")

    def test_header_only_entry(self, tmp_path):
        d, log, cells, entry = self._journal_one(tmp_path)
        header = entry.read_bytes().partition(b"\n")[0]
        entry.write_bytes(header)  # lost everything after the header line
        self._assert_recomputed(d, log, cells, "truncated header")

    def test_garbage_entry_unpicklable(self, tmp_path):
        d, log, cells, entry = self._journal_one(tmp_path)
        entry.write_bytes(b"\x00\xff not a journal entry")
        self._assert_recomputed(d, log, cells, "unpicklable")

    def test_recompute_repairs_the_entry(self, tmp_path):
        d, log, cells, entry = self._journal_one(tmp_path)
        entry.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        # The recomputed result was re-journaled: the next resume is silent
        # and loads without executing.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        assert dict(result) == {7: 49}
        assert _executions(log, 7) == 2

    def test_legacy_headerless_entry_still_loads(self, tmp_path):
        """Journals written before the digest framing read transparently."""
        d, log, cells, entry = self._journal_one(tmp_path)
        payload = entry.read_bytes().partition(b"\n")[2]
        entry.write_bytes(payload)  # strip the header: pre-framing format
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = run_sweep(cells, n_jobs=1, checkpoint_dir=d)
        assert dict(result) == {7: 49}
        assert _executions(log, 7) == 1  # loaded, not recomputed


# ----------------------------------------------------------------------
# wall-clock sanity: budgets and watchdogs ride time.monotonic()
# ----------------------------------------------------------------------
class TestMonotonicClocks:
    """System-clock jumps (NTP step, manual reset) must not trip budgets.

    Both the simulator's ``max_wall_s`` budget and the supervised
    executor's task-timeout watchdog are specified against
    ``time.monotonic()``; these regressions pin that by yanking
    ``time.time`` forward thirty years mid-run.
    """

    @pytest.fixture
    def jumped_wall_clock(self, monkeypatch):
        import time as time_module

        real = time_module.time
        monkeypatch.setattr(time_module, "time", lambda: real() + 1e9)

    def test_simulator_wall_budget_ignores_wall_jump(
        self, two_state_model, jumped_wall_clock
    ):
        sim = Simulator(two_state_model, base_seed=7, max_wall_s=60.0)
        result = sim.run(2000.0)  # finishes in milliseconds of real time
        assert result.final_time == 2000.0
        assert result.n_events > 0

    def test_supervised_timeout_ignores_wall_jump(self, jumped_wall_clock):
        out = run_tasks_supervised(
            [(i, i) for i in range(4)],
            _square_task,
            n_jobs=2,
            retry=RetryPolicy(timeout_s=120.0, base_delay_s=0.0),
        )
        assert out == {i: i * i for i in range(4)}


# ----------------------------------------------------------------------
# serial-fallback warning: once per process, results unchanged
# ----------------------------------------------------------------------
class TestSerialFallbackWarning:
    def test_nested_pool_failure_warns_once_and_matches_serial(
        self, monkeypatch, tmp_path
    ):
        """When pool creation breaks at *both* nesting levels (outer sweep
        pool and inner replication pool), the degradation warning fires
        exactly once per process and the results are bit-identical to a
        plain serial run."""
        from repro.core import resilience

        def no_pool(*args, **kwargs):
            raise OSError("fork: resource temporarily unavailable")

        want = run_sweep(_storage_cells(n=2), n_jobs=1)

        monkeypatch.setattr(resilience, "_SERIAL_FALLBACK_WARNED", False)
        monkeypatch.setattr(resilience, "ProcessPoolExecutor", no_pool)
        cells = [c.with_inner_jobs(2) for c in _storage_cells(n=2)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = run_sweep(cells, n_jobs=2)
        fallbacks = [
            w for w in caught if "worker pool unavailable" in str(w.message)
        ]
        assert len(fallbacks) == 1
        assert issubclass(fallbacks[0].category, RuntimeWarning)
        assert _sweep_samples(got) == _sweep_samples(want)

    def test_flag_suppresses_repeat_warnings(self, monkeypatch):
        from repro.core import resilience

        monkeypatch.setattr(resilience, "_SERIAL_FALLBACK_WARNED", False)
        monkeypatch.setattr(
            resilience,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no pool")),
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                out = run_tasks_supervised(
                    [(i, i) for i in range(3)], _square_task, n_jobs=2
                )
                assert out == {0: 0, 1: 1, 2: 4}
        fallbacks = [
            w for w in caught if "worker pool unavailable" in str(w.message)
        ]
        assert len(fallbacks) == 1
