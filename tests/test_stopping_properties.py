"""Property tests for the stopping/splitting arithmetic (Hypothesis).

These pin the estimator-level invariants the rare-event subsystem's
correctness rests on, independent of any model:

* batch-means variance is positive for non-degenerate samples,
  invariant under shifts (a CI half-width must not depend on the
  metric's origin), and prefix-stable (appending replications never
  rewrites already-complete batches — the property that makes the
  adaptive stopping decision identical under resume);
* splitting factors conserve expected weight at every up-crossing;
* the deterministic round schedule tiles the replication budget
  exactly;
* malformed level functions and policies are rejected loudly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SimulationError,
    StoppingRule,
    batch_means,
    batch_means_half_width,
    batch_means_variance,
)
from repro.experiments.rare import LevelFunction, SplittingPolicy, child_weights

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def samples_and_batch(draw, min_batches=2):
    batch = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=min_batches * batch, max_value=60))
    samples = draw(
        st.lists(finite_floats, min_size=n, max_size=n)
    )
    return samples, batch


class TestBatchMeans:
    @given(samples_and_batch())
    @settings(max_examples=60, deadline=None)
    def test_variance_nonnegative_and_finite(self, sb):
        samples, batch = sb
        var = batch_means_variance(samples, batch)
        assert var >= 0.0
        assert math.isfinite(var)

    @given(samples_and_batch())
    @settings(max_examples=60, deadline=None)
    def test_variance_positive_unless_batch_means_equal(self, sb):
        samples, batch = sb
        means = batch_means(samples, batch)
        var = batch_means_variance(samples, batch)
        spread = float(max(means) - min(means))
        # Distinct means whose squared deviations underflow float64 (e.g.
        # means 0.0 and 5e-185) legitimately yield var == 0.0.
        if len(set(means.tolist())) > 1 and spread * spread > 0.0:
            assert var > 0.0

    @given(samples_and_batch(), st.floats(min_value=-1e5, max_value=1e5))
    @settings(max_examples=60, deadline=None)
    def test_variance_shift_invariant(self, sb, shift):
        samples, batch = sb
        a = batch_means_variance(samples, batch)
        b = batch_means_variance([s + shift for s in samples], batch)
        assert math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-7)

    @given(samples_and_batch(), st.lists(finite_floats, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_prefix_stability(self, sb, extra):
        """Appending samples never changes already-complete batches."""
        samples, batch = sb
        before = batch_means(samples, batch)
        after = batch_means(samples + extra, batch)
        assert after[: len(before)].tolist() == before.tolist()

    @given(samples_and_batch())
    @settings(max_examples=40, deadline=None)
    def test_half_width_scales_with_confidence(self, sb):
        samples, batch = sb
        lo = batch_means_half_width(samples, batch, 0.80)
        hi = batch_means_half_width(samples, batch, 0.99)
        assert lo <= hi

    def test_too_few_batches_raise(self):
        with pytest.raises(SimulationError, match="2 complete batches"):
            batch_means_variance([1.0, 2.0, 3.0], 2)


class TestWeightConservation:
    @given(
        st.floats(min_value=1e-12, max_value=1.0),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_child_weights_conserve_parent(self, weight, factor):
        children = child_weights(weight, factor)
        assert len(children) == factor
        assert math.isclose(sum(children), weight, rel_tol=1e-12)
        assert all(c == children[0] for c in children)

    @given(st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_region_weights_telescope(self, splits):
        """W(b) * prod(R_j, j < b) == 1 for every bracket: the region
        weights the RESTART tree uses conserve the root's mass."""
        w = 1.0
        prod = 1
        for r in splits:
            w /= r
            prod *= r
            assert math.isclose(w * prod, 1.0, rel_tol=1e-12)


class TestPolicyValidation:
    @given(st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_nonpositive_weights_rejected(self, weight):
        with pytest.raises(SimulationError, match="positive finite"):
            LevelFunction("bad", {"p": weight})

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_unsorted_thresholds_rejected(self, thresholds):
        lf = LevelFunction("l", {"p": 1.0})
        strictly_increasing = all(
            a < b for a, b in zip(thresholds, thresholds[1:])
        )
        splits = (2,) * (len(thresholds) - 1)
        if strictly_increasing:
            SplittingPolicy(lf, tuple(thresholds), splits)
        else:
            with pytest.raises(SimulationError, match="strictly increasing"):
                SplittingPolicy(lf, tuple(thresholds), splits)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_split_count_must_match(self, n_thresholds, n_splits):
        lf = LevelFunction("l", {"p": 1.0})
        thresholds = tuple(float(i) for i in range(n_thresholds))
        splits = (2,) * n_splits
        if n_splits == n_thresholds - 1:
            SplittingPolicy(lf, thresholds, splits)
        else:
            with pytest.raises(SimulationError, match="one splitting factor"):
                SplittingPolicy(lf, thresholds, splits)


class TestRoundSchedule:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_rounds_tile_the_cap_exactly(self, min_reps, batch, cap):
        rule = StoppingRule(rel_ci=0.1, min_replications=min_reps, batch=batch)
        n, rounds = 0, []
        while True:
            r = rule.next_round(n, cap)
            if r == 0:
                break
            assert r > 0
            rounds.append(r)
            n += r
        assert sum(rounds) == cap
        assert rounds[0] == min(cap, max(min_reps, 2 * batch))
        assert all(r == batch for r in rounds[1:-1])
