"""Checkpoint/restart analysis (the paper's motivating workload)."""

from __future__ import annotations

import math

import pytest

from repro.cfs import (
    CheckpointModel,
    abe_parameters,
    checkpoint_write_hours,
    efficiency_at_scale,
    petascale_parameters,
    young_interval,
)
from repro.core import ParameterError


class TestCheckpointModel:
    def test_validation(self):
        with pytest.raises(ParameterError):
            CheckpointModel(mtbf_hours=0.0, checkpoint_hours=1.0)
        with pytest.raises(ParameterError):
            CheckpointModel(mtbf_hours=10.0, checkpoint_hours=0.0)
        with pytest.raises(ParameterError):
            CheckpointModel(10.0, 1.0, restart_hours=-1.0)
        with pytest.raises(ParameterError):
            CheckpointModel(10.0, 1.0).efficiency(0.0)

    def test_efficiency_bounded(self):
        m = CheckpointModel(mtbf_hours=100.0, checkpoint_hours=0.5)
        for t in (0.1, 1.0, 10.0, 100.0):
            assert 0.0 < m.efficiency(t) < 1.0

    def test_small_overhead_limit_near_one(self):
        m = CheckpointModel(mtbf_hours=1e6, checkpoint_hours=1e-3)
        assert m.optimal_efficiency() > 0.99

    def test_optimal_interval_matches_young_in_limit(self):
        m = CheckpointModel(mtbf_hours=10_000.0, checkpoint_hours=0.05)
        t_opt = m.optimal_interval()
        assert t_opt == pytest.approx(
            young_interval(0.05, 10_000.0), rel=0.1
        )

    def test_optimum_is_interior(self):
        m = CheckpointModel(mtbf_hours=200.0, checkpoint_hours=0.5)
        t_opt = m.optimal_interval()
        e_opt = m.efficiency(t_opt)
        assert e_opt > m.efficiency(t_opt / 3.0)
        assert e_opt > m.efficiency(t_opt * 3.0)

    def test_expected_wall_exceeds_work(self):
        m = CheckpointModel(mtbf_hours=100.0, checkpoint_hours=0.5)
        assert m.expected_wall_per_segment(2.0) > 2.0

    def test_restart_cost_hurts(self):
        fast = CheckpointModel(100.0, 0.5, restart_hours=0.0)
        slow = CheckpointModel(100.0, 0.5, restart_hours=5.0)
        assert slow.optimal_efficiency() < fast.optimal_efficiency()

    def test_overhead_fraction_complement(self):
        m = CheckpointModel(100.0, 0.5)
        assert m.overhead_fraction() == pytest.approx(
            1.0 - m.optimal_efficiency()
        )


class TestWriteTime:
    def test_basic_arithmetic(self):
        # 1000 nodes x 8 GB x 0.5 = 4000 GB at 10 GB/s = 400 s
        hours = checkpoint_write_hours(1000, 8.0, 0.5, 10.0)
        assert hours == pytest.approx(400.0 / 3600.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            checkpoint_write_hours(0, 8.0, 0.5, 10.0)
        with pytest.raises(ParameterError):
            checkpoint_write_hours(10, 8.0, 1.5, 10.0)

    def test_young_interval_validation(self):
        with pytest.raises(ParameterError):
            young_interval(0.0, 10.0)


class TestEfficiencyAtScale:
    def test_petascale_checkpointing_dominates(self):
        """The motivating claim (Long et al.): at petascale, "more than
        half the computation time would be spent checkpointing".  With
        32000 nodes the whole-machine MTBF — compute-node failures
        included, not just CFS outages — drops to hours."""
        peta = petascale_parameters()
        # 32000 nodes at ~5-year node MTBF => system MTBF ~ 1.4 h; be
        # generous and use 6 h.
        model = efficiency_at_scale(peta, failure_mtbf_hours=6.0)
        assert model.checkpoint_hours > 0.5  # >half an hour per checkpoint
        assert model.optimal_efficiency() < 0.5  # > half the machine lost

    def test_abe_checkpointing_is_cheap(self):
        abe = abe_parameters()
        model = efficiency_at_scale(abe, failure_mtbf_hours=400.0)
        assert model.checkpoint_hours < 0.5
        assert model.optimal_efficiency() > 0.85

    def test_bandwidth_default_scales_with_ddn(self):
        abe = efficiency_at_scale(abe_parameters(), 400.0)
        peta = efficiency_at_scale(petascale_parameters(), 400.0)
        # petascale has 26.7x the nodes but only 10x the DDN bandwidth
        assert peta.checkpoint_hours > 2.0 * abe.checkpoint_hours

    def test_explicit_bandwidth_override(self):
        m = efficiency_at_scale(
            abe_parameters(), 400.0, io_bandwidth_gb_per_s=1000.0
        )
        assert m.checkpoint_hours < 0.01
