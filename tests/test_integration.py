"""End-to-end integration: model → simulate → logs → analysis → recovery.

The full production path a user of this library follows, exercised as one
pipeline with cross-checks at every hand-off.
"""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.analysis import (
    availability_from_outages,
    detect_storms,
    fit_exponential_censored,
    fit_weibull_censored,
    job_statistics,
    jobs_from_events,
    pair_outages,
    parse_file,
)
from repro.cfs import ClusterModel, abe_parameters
from repro.core import Weibull, make_generator
from repro.loggen import disk_survival_dataset, generate_abe_logs, write_log


@pytest.fixture(scope="module")
def logs():
    return generate_abe_logs(seed=2013)


class TestFullPipeline:
    def test_serialize_parse_analyze(self, logs, tmp_path):
        """Write both logs to disk, re-parse, and recover the statistics."""
        san_path = tmp_path / "san.log"
        compute_path = tmp_path / "compute.log"
        write_log(logs.san_log.events, str(san_path))
        write_log(logs.compute_log.events, str(compute_path))

        san = parse_file(san_path).log
        compute = parse_file(compute_path).log

        # 1) availability from the re-parsed SAN log
        w = logs.windows
        outages = pair_outages(san.component("san"), window_end=w.san_end)
        a = availability_from_outages(outages, w.epoch, w.san_end)
        assert a == pytest.approx(logs.ground_truth.cfs_availability, abs=0.005)

        # 2) job statistics from the re-parsed compute log
        jobs = jobs_from_events(compute)
        stats = job_statistics(jobs)
        direct = job_statistics(logs.jobs)
        assert stats.total == direct.total
        assert stats.failed_transient == direct.failed_transient
        assert stats.failed_other == direct.failed_other

    def test_storm_detection_finds_spine_events(self, logs):
        mount_log = logs.compute_log.types("mount_failure")
        if len(mount_log) == 0:
            pytest.skip("no mount failures this seed")
        storms = detect_storms(mount_log, gap_hours=0.5, min_sources=30)
        # ground truth had spine transients; most observed spine events
        # produce wide storms
        assert len(storms) >= 1

    def test_transient_rate_recovery(self, logs):
        """Transient-kill fraction implies the per-path rate within 2x."""
        stats = job_statistics(logs.jobs)
        p_kill = stats.failed_transient / stats.total
        import math

        params = abe_parameters()
        lam_implied = -math.log(1 - p_kill) / params.job_mean_duration_hours
        lam_model = (
            params.switch_transient_per_720h + params.spine_transient_per_720h
        ) / 720.0
        assert lam_implied == pytest.approx(lam_model, rel=0.6)

    def test_disk_survival_estimation_pipeline(self):
        """Fleet data generated under a known law is recovered by both the
        Weibull MLE (shape) and the exponential fit (scale/MTBF order)."""
        law = Weibull.from_mtbf(0.7, 20_000.0)
        data = disk_survival_dataset(400, law, 30_000.0, make_generator(42))
        wfit = fit_weibull_censored(data.durations, data.observed)
        assert wfit.shape == pytest.approx(0.7, abs=0.12)
        efit = fit_exponential_censored(data.durations, data.observed)
        assert efit.mtbf_hours == pytest.approx(20_000.0, rel=0.4)

    def test_simulation_measure_vs_trace_consistency(self):
        """The reward-based availability and the trace-based availability of
        the same run must agree exactly."""
        cm = ClusterModel(abe_parameters(), base_seed=77)
        from repro.core import BinaryTrace, RateReward
        from repro.cfs import cfs_up_predicate

        up = cfs_up_predicate(cm.model)
        rw = RateReward("a", lambda m: 1.0 if up(m) else 0.0)
        tr = BinaryTrace("up", up)
        res = cm.simulator.run(4000.0, rewards=[rw], traces=[tr])
        assert res.trace("up").availability() == pytest.approx(
            res["a"].time_average, abs=1e-12
        )
