"""Compiled case/guard kernels: declaration API, bit-identity, verification.

``Case(..., writes=[...])`` declares a case branch's effect as a fixed
sequence of slot ops; when every case of an activity declares its writes
(constant probabilities, no other Python gate functions) the compiled
engine selects a branch with the same single uniform the function path
consumes and applies precomputed slot deltas — a **case kernel**.
``OutputGate(..., writes=[...], when=(place, cmp, value))`` declares the
one conditional-effect shape as a two-branch **guard kernel** selected
by the completion marking.  The contracts pinned here:

* annotated models follow **bit-identical** trajectories to their
  unannotated twins, in per-draw and batched mode, against both the
  specialized loops and the ``engine="reference"`` oracle (which never
  uses kernels) — including instantaneous case activities, which fire
  through the settle fixpoint;
* misdeclarations — wrong amounts, undeclared writes, rng use in a case
  function, a wrong guard branch, unknown places — raise loudly on the
  branch's first selection (or at compile time);
* the declared ops enforce the same non-negative marking invariant as
  ``LocalView.__setitem__``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAN,
    Case,
    Exponential,
    ModelError,
    OutputGate,
    RateReward,
    SimulationError,
    Simulator,
    flatten,
    replicate,
)

pytestmark = pytest.mark.slow


def _case_fleet(n_units, fail_rate, repair_rate, p1, p2, annotate):
    """Replicated units whose failure draws a three-way propagation coin
    (timed cases), absorbed by an instant two-way coin — the shapes the
    cluster models use — optionally declaring every case's writes."""
    san = SAN("unit")
    san.place("up", 1)
    san.place("down_count", 0)
    san.place("a_total", 0)
    san.place("b_total", 0)
    san.place("reacted", 0)

    def fail_a(m, rng):
        m["up"] = 0
        m["down_count"] += 1
        m["a_total"] += 1

    def fail_b(m, rng):
        m["up"] = 0
        m["down_count"] += 1
        m["b_total"] += 1

    def fail_quiet(m, rng):
        m["up"] = 0
        m["down_count"] += 1

    p3 = 1.0 - p1 - p2

    def w(ops):
        return ops if annotate else None

    san.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        cases=[
            Case(
                p1,
                fail_a,
                name="a",
                writes=w([("up", "set", 0), ("down_count", "add", 1), ("a_total", "add", 1)]),
            ),
            Case(
                p2,
                fail_b,
                name="b",
                writes=w([("up", "set", 0), ("down_count", "add", 1), ("b_total", "add", 1)]),
            ),
            Case(
                p3,
                fail_quiet,
                name="quiet",
                writes=w([("up", "set", 0), ("down_count", "add", 1)]),
            ),
        ],
    )
    san.timed(
        "repair",
        Exponential(repair_rate),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
    )

    def react_hard(m, rng):
        m["reacted"] = 1
        m["a_total"] += 1

    def react_soft(m, rng):
        m["reacted"] = 1

    # Instant case activity: fires inside the settle fixpoint.  One case
    # is a superset of the other, like the cluster's absorb coins.
    san.instant(
        "react",
        enabled=lambda m: m["down_count"] >= 2 and m["reacted"] == 0,
        cases=[
            Case(0.25, react_hard, name="hard", writes=w([("reacted", "set", 1), ("a_total", "add", 1)])),
            Case(0.75, react_soft, name="soft", writes=w([("reacted", "set", 1)])),
        ],
        priority=5,
    )
    san.timed(
        "calm",
        Exponential(repair_rate),
        enabled=lambda m: m["reacted"] == 1 and m["down_count"] < 2,
        effect=lambda m, rng: m.__setitem__("reacted", 0),
    )
    return flatten(
        replicate(
            "fleet",
            san,
            n_units,
            shared=["down_count", "a_total", "b_total", "reacted"],
        )
    )


def _guard_fleet(n_units, annotate):
    """Conditional-effect shape (the tier restore): a periodic check that
    clears the alarm only when the backlog has drained."""
    san = SAN("cell")
    san.place("busy", 0)
    san.place("alarm", 0)
    san.place("cleared_total", 0)

    def load(m, rng):
        m["busy"] += 1
        if m["busy"] >= 2:
            m["alarm"] = 1

    def drain(m, rng):
        m["busy"] -= 1

    def check(m, rng):
        # conditional: clears only when the backlog has drained
        if m["busy"] <= 1:
            m["alarm"] = 0
            m["cleared_total"] += 1

    san.timed("load", Exponential(0.05), enabled=lambda m: m["busy"] < 4, effect=load)
    san.timed("drain", Exponential(0.06), enabled=lambda m: m["busy"] > 0, effect=drain)
    san.timed(
        "check",
        Exponential(0.2),
        enabled=lambda m: m["alarm"] == 1,
        effect=check,
        writes=[("alarm", "set", 0), ("cleared_total", "add", 1)] if annotate else None,
        when=("busy", "<=", 1) if annotate else None,
    )
    return flatten(replicate("grid", san, n_units, shared=["cleared_total"]))


def _run(model, seed, batch, engine="auto", hours=1500.0, shared="fleet/down_count"):
    rewards = [RateReward("level", lambda m: m[shared] / 10.0)]
    sim = Simulator(model, base_seed=seed, sample_batch=batch, engine=engine)
    res = sim.run(hours, rewards=rewards)
    return res, sim


class TestCaseKernelBitIdentity:
    @given(
        seed=st.integers(0, 2**32 - 1),
        fail_rate=st.floats(0.005, 0.05),
        repair_rate=st.floats(0.05, 0.5),
        p1=st.floats(0.05, 0.5),
        p2=st.floats(0.05, 0.4),
        batch=st.sampled_from([None, 64, 256]),
    )
    @settings(max_examples=25, deadline=None)
    def test_annotated_matches_unannotated(
        self, seed, fail_rate, repair_rate, p1, p2, batch
    ):
        plain = _case_fleet(10, fail_rate, repair_rate, p1, p2, annotate=False)
        annotated = _case_fleet(10, fail_rate, repair_rate, p1, p2, annotate=True)
        ra, sim_a = _run(annotated, seed, batch)
        rp, _ = _run(plain, seed, batch)
        assert ra.n_events == rp.n_events
        assert ra._final_values == rp._final_values
        assert ra["level"].integral.hex() == rp["level"].integral.hex()
        assert sim_a.last_case_kernels > 0

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_case_kernels_match_reference_oracle(self, seed):
        annotated = _case_fleet(10, 0.02, 0.1, 0.3, 0.2, annotate=True)
        fast, sim = _run(annotated, seed, 256)
        ref, ref_sim = _run(annotated, seed, 256, engine="reference")
        assert fast.n_events == ref.n_events
        assert fast._final_values == ref._final_values
        assert fast["level"].integral.hex() == ref["level"].integral.hex()
        # the oracle never applies kernels; the fast loop does
        assert ref_sim.last_case_kernels == 0
        assert sim.last_case_kernels > 0

    @given(seed=st.integers(0, 2**32 - 1), batch=st.sampled_from([None, 256]))
    @settings(max_examples=20, deadline=None)
    def test_guard_kernel_matches_unannotated_and_reference(self, seed, batch):
        plain = _guard_fleet(6, annotate=False)
        annotated = _guard_fleet(6, annotate=True)
        ra, sim_a = _run(annotated, seed, batch, shared="grid/cleared_total")
        rp, _ = _run(plain, seed, batch, shared="grid/cleared_total")
        assert ra.n_events == rp.n_events
        assert ra._final_values == rp._final_values
        assert ra["level"].integral.hex() == rp["level"].integral.hex()
        ref, _ = _run(
            annotated, seed, batch, engine="reference", shared="grid/cleared_total"
        )
        assert ra._final_values == ref._final_values
        assert sim_a.last_case_kernels > 0

    def test_counters_partition_event_count(self):
        annotated = _case_fleet(8, 0.02, 0.1, 0.3, 0.2, annotate=True)
        sim = Simulator(annotated, base_seed=3)
        res = sim.run(2000.0)
        assert sim.last_loop == "observed"  # instants make it observed
        assert (
            sim.last_kernel_effects
            + sim.last_case_kernels
            + sim.last_python_effects
            == res.n_events
        )
        assert sim.last_case_kernels > 0

    def test_report_classifies_case_kernels(self):
        annotated = _case_fleet(2, 0.02, 0.1, 0.3, 0.2, annotate=True)
        report = Simulator(annotated).fastpath_report()
        names = {p.rsplit("/", 1)[-1] for p in report["case_kernel_activities"]}
        assert names == {"fail", "react"}
        assert report["python_effect_activities"] != []  # repair/calm lambdas
        guard = _guard_fleet(2, annotate=True)
        report = Simulator(guard).fastpath_report()
        names = {p.rsplit("/", 1)[-1] for p in report["case_kernel_activities"]}
        assert names == {"check"}

    def test_warm_program_retraces(self):
        annotated = _case_fleet(8, 0.02, 0.1, 0.3, 0.2, annotate=True)
        sim = Simulator(annotated, base_seed=5)
        first = sim.run(1000.0)
        fresh = Simulator(annotated, base_seed=5)
        again = fresh.run(1000.0)
        assert first.n_events == again.n_events
        assert first._final_values == again._final_values


def _one_coin(cases, places=("a", "b")):
    """Single activity with cases, firing repeatedly."""
    san = SAN("s")
    for p in places:
        san.place(p, 1)
    san.place("n", 0)
    san.timed(
        "act",
        Exponential(1.0),
        enabled=lambda m: m["n"] < 50,
        cases=cases,
    )
    return flatten(replicate("r", san, 1))


class TestVerification:
    def test_wrong_amount_raises(self):
        cases = [
            Case(1.0, lambda m, rng: m.__setitem__("n", m["n"] + 1),
                 writes=[("n", "add", 2)]),
        ]
        with pytest.raises(SimulationError, match="declared writes do not match"):
            Simulator(_one_coin(cases), base_seed=1).run(100.0)

    def test_undeclared_write_raises(self):
        def eff(m, rng):
            m["n"] += 1
            m["a"] = 0  # not declared

        cases = [Case(1.0, eff, writes=[("n", "add", 1)])]
        with pytest.raises(SimulationError, match="undeclared"):
            Simulator(_one_coin(cases), base_seed=1).run(100.0)

    def test_rng_use_in_case_raises(self):
        def eff(m, rng):
            m["n"] += 1 if rng.uniform() < 2.0 else 2

        cases = [Case(1.0, eff, writes=[("n", "add", 1)])]
        with pytest.raises(SimulationError, match="must not use the rng"):
            Simulator(_one_coin(cases), base_seed=1).run(100.0)

    def test_noop_branch_that_writes_raises(self):
        """An explicitly-empty declaration catches a branch that does
        write (every selected branch is eventually verified)."""
        cases = [
            Case(0.5, lambda m, rng: m.__setitem__("n", m["n"] + 1),
                 name="bump", writes=[("n", "add", 1)]),
            Case(0.5, lambda m, rng: m.__setitem__("a", 0),
                 name="liar", writes=()),
        ]
        with pytest.raises(SimulationError, match="undeclared"):
            Simulator(_one_coin(cases), base_seed=1).run(200.0)

    def test_guard_branch_mismatch_raises(self):
        """The false guard branch declares 'no writes'; a function that
        writes anyway is caught when that branch first occurs."""
        san = SAN("s")
        san.place("gate", 0)
        san.place("n", 0)

        def eff(m, rng):
            # disagrees with the declared guard (writes when gate == 0)
            m["n"] += 1

        san.timed(
            "tick",
            Exponential(1.0),
            enabled=lambda m: m["n"] < 5,
            effect=eff,
            writes=[("n", "add", 1)],
            when=("gate", ">=", 1),
        )
        model = flatten(replicate("r", san, 1))
        with pytest.raises(SimulationError, match="guarded writes"):
            Simulator(model, base_seed=1).run(100.0)

    def test_negative_drive_raises(self):
        cases = [
            Case(1.0, lambda m, rng: (
                m.__setitem__("n", m["n"] + 1),
                m.__setitem__("a", m["a"] - 1),
            ), writes=[("n", "add", 1), ("a", "add", -1)]),
        ]
        with pytest.raises(SimulationError, match="negative"):
            Simulator(_one_coin(cases), base_seed=1).run(1000.0)

    def test_failed_verification_is_not_sticky(self):
        cases = [
            Case(1.0, lambda m, rng: m.__setitem__("n", m["n"] + 1),
                 writes=[("n", "add", 2)]),
        ]
        model = _one_coin(cases)
        sim = Simulator(model, base_seed=1)
        with pytest.raises(SimulationError, match="declared writes"):
            sim.run(100.0)
        with pytest.raises(SimulationError, match="declared writes"):
            sim.run(100.0)

    def test_unknown_place_rejected_at_compile(self):
        cases = [Case(1.0, lambda m, rng: None, writes=[("nope", "add", 1)])]
        with pytest.raises(SimulationError, match="not a place"):
            Simulator(_one_coin(cases), base_seed=1).run(100.0)

    def test_reference_engine_ignores_declarations(self):
        """The oracle calls the functions, so even a misdeclared case
        runs (its python path defines the correct trajectory)."""
        cases = [
            Case(1.0, lambda m, rng: m.__setitem__("n", m["n"] + 1),
                 writes=[("n", "add", 2)]),
        ]
        res = Simulator(
            _one_coin(cases), base_seed=1, engine="reference"
        ).run(100.0)
        assert res.n_events >= 1


class TestDeclarationAPI:
    def test_case_writes_normalized(self):
        c = Case(0.5, lambda m, rng: None, writes=(("a", "add", 2),))
        assert c.writes == (("a", "add", 2),)
        assert Case(0.5, lambda m, rng: None, writes=()).writes == ()

    @pytest.mark.parametrize(
        "writes",
        [
            [("a", "mul", 2)],
            [("a", "add", 0)],
            [("a", "set", -1)],
            [("", "set", 1)],
            [("a", "add", 1.5)],
            [("a", "add", "x")],
            [("a", "set", float("nan"))],
            ["a"],
        ],
    )
    def test_invalid_case_writes_rejected(self, writes):
        with pytest.raises(ModelError):
            Case(0.5, lambda m, rng: None, writes=writes)

    def test_when_requires_writes(self):
        with pytest.raises(ModelError, match="requires writes"):
            OutputGate(lambda m, rng: None, when=("a", "<=", 1))

    @pytest.mark.parametrize(
        "when",
        [
            ("a", "~", 1),
            ("", "<=", 1),
            ("a", "<=", 1.5),
            ("a", "<=", "x"),
            ("a",),
            "a",
        ],
    )
    def test_invalid_guard_rejected(self, when):
        with pytest.raises(ModelError):
            OutputGate(
                lambda m, rng: None, writes=[("a", "set", 0)], when=when
            )

    def test_when_requires_effect_in_san_sugar(self):
        san = SAN("s")
        san.place("a", 1)
        with pytest.raises(ModelError, match="guard without an effect"):
            san.timed(
                "t",
                Exponential(1.0),
                enabled=lambda m: True,
                when=("a", "<=", 1),
            )

    def test_partial_annotation_stays_python(self):
        """One undeclared case keeps the whole activity on the Python
        path — no partial kernels."""
        cases = [
            Case(0.5, lambda m, rng: m.__setitem__("n", m["n"] + 1),
                 writes=[("n", "add", 1)]),
            Case(0.5, lambda m, rng: None),
        ]
        sim = Simulator(_one_coin(cases), base_seed=2)
        sim.run(100.0)
        assert sim.last_case_kernels == 0

    def test_dynamic_probabilities_stay_python(self):
        """Marking-dependent case probabilities cannot be compiled."""
        cases = [
            Case(lambda m: 0.5, lambda m, rng: m.__setitem__("n", m["n"] + 1),
                 writes=[("n", "add", 1)]),
            Case(lambda m: 0.5, lambda m, rng: None, writes=()),
        ]
        sim = Simulator(_one_coin(cases), base_seed=2)
        sim.run(100.0)
        assert sim.last_case_kernels == 0
