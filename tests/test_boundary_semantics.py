"""Probe/window boundary semantics: fast and reference loops must agree.

The regression surface audited in PR 7: probes falling exactly on
``warmup``/``until``/event times, probes after an early stop, and reward
windows clipped partially or entirely outside the ``[warmup, until]``
observation interval.  Every case here asserts the observed fast loop
and the ``engine="reference"`` oracle produce identical results, and
pins the documented semantics:

* probes record the **left limit** — the reward value just before any
  event at the probe instant;
* probes beyond an early stop stay unrecorded; probes at or before the
  stop time are recorded;
* a window outside the observation interval integrates to 0 with
  duration 0; an early stop clips windowed durations at the stop time.
"""

from __future__ import annotations

import pytest

from repro.core import (
    SAN,
    Deterministic,
    Exponential,
    RateReward,
    Simulator,
    flatten,
)
from repro.core.errors import SimulationError
from repro.core.rewards import Indicator


def _clock_model():
    """Deterministic unit: fails at exactly t=2, repairs after exactly 1h.

    Events land on known instants (2, 3, 5, 6, 8, ...), so probes can be
    placed exactly on event times.
    """
    san = SAN("unit")
    san.place("up", 1)
    san.timed(
        "fail",
        Deterministic(2.0),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: m.__setitem__("up", 0),
        writes=[("up", "set", 0)],
    )
    san.timed(
        "repair",
        Deterministic(1.0),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: m.__setitem__("up", 1),
        writes=[("up", "set", 1)],
    )
    return flatten(san)


def _stochastic_model():
    san = SAN("unit")
    san.place("up", 1)
    san.place("fails", 0)
    san.timed(
        "fail",
        Exponential(0.5),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("fails", m["fails"] + 1),
        ),
    )
    san.timed(
        "repair",
        Exponential(2.0),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: m.__setitem__("up", 1),
    )
    return flatten(san)


def _up_reward(**kw):
    return RateReward(
        "up_frac", lambda m: float(m["unit/up"]), reads=["unit/up"], **kw
    )


def _run_both(model_factory, until, **run_kw):
    rf = Simulator(model_factory(), base_seed=9).run(until, **run_kw)
    rr = Simulator(model_factory(), base_seed=9, engine="reference").run(
        until, **run_kw
    )
    return rf, rr


def _assert_same(rf, rr, name="up_frac"):
    assert rf[name].integral == rr[name].integral
    assert rf[name].instants == rr[name].instants
    assert rf[name].duration == rr[name].duration
    assert rf.n_events == rr.n_events
    assert rf.final_time == rr.final_time
    assert rf.stopped_early == rr.stopped_early


class TestProbeBoundaries:
    def test_probe_exactly_at_event_time_records_left_limit(self):
        """The unit fails at t=2: a probe at 2.0 sees the pre-event value."""
        rw = [_up_reward(probe_times=[2.0, 2.5, 3.0])]
        rf, rr = _run_both(_clock_model, 10.0, rewards=rw)
        _assert_same(rf, rr)
        assert rf["up_frac"].instants == [(2.0, 1.0), (2.5, 0.0), (3.0, 0.0)]

    def test_probe_at_zero_and_at_until(self):
        rw = [_up_reward(probe_times=[0.0, 10.0])]
        rf, rr = _run_both(_clock_model, 10.0, rewards=rw)
        _assert_same(rf, rr)
        assert rf["up_frac"].instants[0] == (0.0, 1.0)
        # t=10 is one hour past the repair at t=9: up again
        assert rf["up_frac"].instants[1] == (10.0, 1.0)

    def test_probe_at_warmup_is_recorded(self):
        rw = [_up_reward(probe_times=[4.0])]
        rf, rr = _run_both(_clock_model, 10.0, warmup=4.0, rewards=rw)
        _assert_same(rf, rr)
        assert len(rf["up_frac"].instants) == 1

    def test_probe_beyond_until_raises(self):
        rw = [_up_reward(probe_times=[11.0])]
        with pytest.raises(SimulationError, match="exceeds until"):
            Simulator(_clock_model(), base_seed=9).run(10.0, rewards=rw)

    def test_probe_after_last_event_uses_final_marking(self):
        """No events between the last completion and ``until``: remaining
        probes flush from the constant final marking."""
        rw = [_up_reward(probe_times=[9.5, 9.9])]
        rf, rr = _run_both(_clock_model, 10.0, rewards=rw)
        _assert_same(rf, rr)
        assert rf["up_frac"].instants == [(9.5, 1.0), (9.9, 1.0)]


class TestEarlyStopProbes:
    @staticmethod
    def _stop(m):
        return m["unit/fails"] >= 2

    def test_probes_beyond_early_stop_unrecorded(self):
        rw = [_up_reward(probe_times=[0.0, 0.1, 500.0, 1000.0])]
        rf, rr = _run_both(
            _stochastic_model, 1000.0, rewards=rw, stop_predicate=self._stop
        )
        _assert_same(rf, rr)
        assert rf.stopped_early
        recorded = rf["up_frac"].instants
        assert all(t <= rf.final_time for t, _v in recorded)
        assert (0.0, 1.0) in recorded
        assert all(t != 1000.0 for t, _v in recorded)

    def test_duration_clipped_at_stop(self):
        rf, rr = _run_both(
            _stochastic_model,
            1000.0,
            rewards=[_up_reward()],
            stop_predicate=self._stop,
        )
        _assert_same(rf, rr)
        assert rf.duration == rf.final_time
        assert rf["up_frac"].integral <= rf.duration


class TestWindowClipping:
    def test_window_entirely_before_warmup(self):
        rw = [_up_reward(window=(1.0, 3.0))]
        rf, rr = _run_both(_clock_model, 10.0, warmup=5.0, rewards=rw)
        _assert_same(rf, rr)
        assert rf["up_frac"].integral == 0.0
        assert rf["up_frac"].duration == 0.0

    def test_window_entirely_after_until(self):
        rw = [_up_reward(window=(20.0, 30.0))]
        rf, rr = _run_both(_clock_model, 10.0, rewards=rw)
        _assert_same(rf, rr)
        assert rf["up_frac"].integral == 0.0
        assert rf["up_frac"].duration == 0.0

    def test_window_touching_until_boundary(self):
        """Window [8, 10] on a run to 10: unit repairs at t=9."""
        rw = [_up_reward(window=(8.0, 10.0))]
        rf, rr = _run_both(_clock_model, 10.0, rewards=rw)
        _assert_same(rf, rr)
        # down on [8, 9), up on [9, 10): exactly 1.0 up-hours
        assert rf["up_frac"].integral == 1.0
        assert rf["up_frac"].duration == 2.0

    def test_window_clipped_by_warmup(self):
        rw = [_up_reward(window=(0.0, 4.0))]
        rf, rr = _run_both(_clock_model, 10.0, warmup=2.5, rewards=rw)
        _assert_same(rf, rr)
        # observation is [2.5, 4.0]; unit is down on [2, 3): 1 up-hour
        assert rf["up_frac"].integral == 1.0
        assert rf["up_frac"].duration == 1.5

    def test_windowed_duration_clipped_by_early_stop(self):
        rw = [
            RateReward(
                "up_w",
                lambda m: float(m["unit/up"]),
                reads=["unit/up"],
                window=(0.0, 900.0),
            )
        ]
        rf, rr = _run_both(
            _stochastic_model,
            1000.0,
            rewards=rw,
            stop_predicate=lambda m: m["unit/fails"] >= 2,
        )
        _assert_same(rf, rr, name="up_w")
        assert rf["up_w"].duration == min(rf.final_time, 900.0)

    def test_form_reward_with_window_and_probes(self):
        """Forms compose with windows and probes identically to closures."""

        def rw():
            return [
                RateReward(
                    "up_form",
                    form=Indicator(guards=[("unit/up", ">=", 1)]),
                    window=(2.0, 8.0),
                    probe_times=[2.0, 5.0, 8.0],
                )
            ]

        rf, rr = _run_both(_clock_model, 10.0, rewards=rw())
        _assert_same(rf, rr, name="up_form")
        # down on [2,3) and [5,6): 4 of the 6 window hours are up
        assert rf["up_form"].integral == 4.0
        assert rf["up_form"].instants == [(2.0, 1.0), (5.0, 1.0), (8.0, 1.0)]
