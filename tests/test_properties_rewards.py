"""Property-based differential tests of the reward fast path.

The specialized observed fast loop (``engine="auto"``) must reproduce the
general reference loop (``engine="reference"``) *bit for bit* on random
models with random observers: rate-reward integrals, impulse
accumulators, interval-of-time windows, instant-of-time probes,
binary-trace transitions, warm-up clipping and early stops.  Parallel
replication (``n_jobs > 1``) must in turn match serial execution
float-for-float.

Cross-checks beyond the engine-vs-engine differential:

* windowed integrals of indicator rewards equal the trace-derived
  occupation time of the window;
* probe values equal the trace value at the probed instant;
* windowed impulse counts equal the event-trace events in the window;
* declared read sets produce the same accumulators as tracked discovery,
  and undeclared reads fail loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAN,
    BinaryTrace,
    EventTrace,
    Exponential,
    ImpulseReward,
    RateReward,
    SimulationError,
    Simulator,
    Uniform,
    flatten,
    join,
    replicate,
    replicate_runs,
)

pytestmark = pytest.mark.slow


def build_fleet(n_units, fail_rate, repair_mean, threshold):
    """Repairable fleet with an instantaneous alarm watcher (same shape
    as tests/test_properties_engine.py, so the differential covers the
    instant-fixpoint path of the observed loop)."""
    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("down_count", 0)
    unit.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down_count", m["down_count"] + 1),
        ),
    )
    unit.timed(
        "repair",
        Uniform(0.5 * repair_mean, 1.5 * repair_mean),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
    )
    watch = SAN("watch")
    watch.place("down_count", 0)
    watch.place("alarm", 0)
    watch.instant(
        "raise",
        enabled=lambda m: m["down_count"] >= threshold and m["alarm"] == 0,
        effect=lambda m, rng: m.__setitem__("alarm", 1),
    )
    watch.instant(
        "clear",
        enabled=lambda m: m["down_count"] < threshold and m["alarm"] == 1,
        effect=lambda m, rng: m.__setitem__("alarm", 0),
    )
    return flatten(
        join(
            "sys",
            replicate("units", unit, n_units, shared=["down_count"]),
            watch,
            shared=["down_count"],
        )
    )


def make_observers(n_units, window, probes, impulse_window):
    rewards = [
        RateReward(
            "frac_down", lambda m: m["sys/down_count"] / float(n_units)
        ),
        RateReward(
            "busy",
            lambda m: 1.0 if m["sys/down_count"] > 0 else 0.0,
            window=window,
            probe_times=probes,
        ),
        ImpulseReward("fails", "*/fail"),
        ImpulseReward(
            "weighted_repairs",
            lambda path: path.endswith("/repair"),
            value=lambda m: 1.0 + m["sys/down_count"],
            window=impulse_window,
        ),
    ]
    traces = [BinaryTrace("alarm", lambda m: m["sys/watch/alarm"] == 1)]
    return rewards, traces


def reward_fingerprint(res):
    """Bit-level fingerprint of everything a run observed."""
    return {
        "n_events": res.n_events,
        "final": list(res._final_values),
        "final_time": res.final_time.hex(),
        "stopped": res.stopped_early,
        "rewards": {
            name: (
                r.integral.hex(),
                r.impulse_sum.hex(),
                r.count,
                r.duration.hex(),
                [(t.hex(), v.hex()) for t, v in r.instants],
            )
            for name, r in res.rewards.items()
        },
        "traces": {
            name: [(t.hex(), v) for t, v in tr.transitions]
            for name, tr in res.traces.items()
            if isinstance(tr, BinaryTrace)
        },
    }


fleet_params = st.tuples(
    st.integers(2, 6),               # units
    st.floats(0.02, 0.5),            # fail rate
    st.floats(0.5, 10.0),            # repair mean
    st.integers(1, 3),               # alarm threshold
    st.integers(0, 10_000),          # seed
)

observer_params = st.tuples(
    st.floats(0.0, 60.0),            # warmup
    st.one_of(                       # rate window
        st.none(),
        st.tuples(st.floats(0.0, 80.0), st.floats(90.0, 400.0)),
    ),
    st.one_of(                       # probe times
        st.none(),
        st.lists(st.floats(0.0, 200.0), min_size=1, max_size=4),
    ),
    st.one_of(                       # impulse window
        st.none(),
        st.tuples(st.floats(0.0, 80.0), st.floats(90.0, 400.0)),
    ),
    st.sampled_from([None, 64, 256]),  # sample batch
)


def run_pair(model, observers_factory, seed, sample_batch, **run_kwargs):
    """Run the same configuration under both engines."""
    out = []
    for engine in ("auto", "reference"):
        rewards, traces = observers_factory()
        sim = Simulator(
            model, base_seed=seed, sample_batch=sample_batch, engine=engine
        )
        out.append(
            sim.run(200.0, rewards=rewards, traces=traces, **run_kwargs)
        )
    return out


@given(fleet_params, observer_params)
@settings(max_examples=30, deadline=None)
def test_fast_loop_matches_reference_bit_for_bit(params, obs_params):
    n_units, fail_rate, repair_mean, threshold, seed = params
    warmup, window, probes, impulse_window, sample_batch = obs_params
    if probes is not None:
        probes = [min(t, 200.0) for t in probes]
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    fast, ref = run_pair(
        model,
        lambda: make_observers(n_units, window, probes, impulse_window),
        seed,
        sample_batch,
        warmup=min(warmup, 199.0),
    )
    assert reward_fingerprint(fast) == reward_fingerprint(ref)


@given(fleet_params, st.integers(1, 8))
@settings(max_examples=15, deadline=None)
def test_stop_predicate_matches_reference(params, stop_at):
    n_units, fail_rate, repair_mean, threshold, seed = params
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    fast, ref = run_pair(
        model,
        lambda: make_observers(n_units, None, None, None),
        seed,
        256,
        stop_predicate=lambda m: m["sys/units/unit[0]/down_count"] >= stop_at,
    )
    assert fast.stopped_early == ref.stopped_early
    assert reward_fingerprint(fast) == reward_fingerprint(ref)


@given(fleet_params)
@settings(max_examples=15, deadline=None)
def test_windowed_integral_equals_trace_occupation(params):
    """∫ 1{busy} dt over a window == trace-derived time in state."""
    n_units, fail_rate, repair_mean, threshold, seed = params
    window = (30.0, 150.0)
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    busy = RateReward(
        "busy",
        lambda m: 1.0 if m["sys/down_count"] > 0 else 0.0,
        window=window,
    )
    trace = BinaryTrace("busy_tr", lambda m: m["sys/down_count"] > 0)
    res = Simulator(model, base_seed=seed).run(
        200.0, rewards=[busy], traces=[trace]
    )
    occupation = sum(
        min(iv.end, window[1]) - max(iv.start, window[0])
        for iv in res.trace("busy_tr").intervals_where(True)
        if iv.end > window[0] and iv.start < window[1]
    )
    assert res["busy"].integral == pytest.approx(occupation, abs=1e-9)
    assert res["busy"].duration == pytest.approx(window[1] - window[0])
    assert 0.0 <= res["busy"].time_average <= 1.0


@given(fleet_params, st.lists(st.floats(0.0, 200.0), min_size=1, max_size=5))
@settings(max_examples=15, deadline=None)
def test_probe_equals_trace_value_at_instant(params, probe_times):
    """An instant-of-time probe reads the left limit of the trajectory."""
    n_units, fail_rate, repair_mean, threshold, seed = params
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    busy = RateReward(
        "busy",
        lambda m: 1.0 if m["sys/down_count"] > 0 else 0.0,
        probe_times=probe_times,
    )
    trace = BinaryTrace("busy_tr", lambda m: m["sys/down_count"] > 0)
    res = Simulator(model, base_seed=seed).run(
        200.0, rewards=[busy], traces=[trace]
    )
    instants = res["busy"].instants
    assert [t for t, _ in instants] == sorted(probe_times)
    transitions = res.trace("busy_tr").transitions
    for t, value in instants:
        # left limit: last transition strictly before t (or the t=0 state)
        state = transitions[0][1]
        for tt, vv in transitions:
            if tt < t or (tt == 0.0 and t == 0.0):
                state = vv
            else:
                break
        assert value == (1.0 if state else 0.0), f"probe at t={t}"


@given(fleet_params)
@settings(max_examples=15, deadline=None)
def test_windowed_impulse_equals_event_trace_count(params):
    n_units, fail_rate, repair_mean, threshold, seed = params
    window = (40.0, 160.0)
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    imp = ImpulseReward("fails_w", "*/fail", window=window)
    etr = EventTrace("fail_events", "*/fail")
    res = Simulator(model, base_seed=seed).run(
        200.0, rewards=[imp], traces=[etr]
    )
    in_window = [
        ev for ev in res.trace("fail_events").events
        if window[0] <= ev.time <= window[1]
    ]
    assert res["fails_w"].count == len(in_window)
    assert res["fails_w"].impulse_sum == pytest.approx(len(in_window))
    assert res["fails_w"].duration == pytest.approx(window[1] - window[0])


@given(fleet_params)
@settings(max_examples=15, deadline=None)
def test_declared_reads_match_tracked_discovery(params):
    """Declaring the read set must not change any accumulator bit."""
    n_units, fail_rate, repair_mean, threshold, seed = params
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    slot = model.paths["sys/down_count"]

    discovered = RateReward(
        "frac", lambda m: m["sys/down_count"] / float(n_units)
    )
    declared = RateReward(
        "frac",
        lambda m: m.raw[slot] / float(n_units),
        reads=("sys/down_count",),
    )
    r1 = Simulator(model, base_seed=seed).run(200.0, rewards=[discovered])
    r2 = Simulator(model, base_seed=seed).run(200.0, rewards=[declared])
    assert r1["frac"].integral.hex() == r2["frac"].integral.hex()
    assert r1.n_events == r2.n_events


def test_undeclared_read_raises():
    model = build_fleet(3, 0.1, 2.0, 2)
    bad = RateReward(
        "bad",
        lambda m: float(m["sys/down_count"]),  # tracked read, undeclared
        reads=("sys/watch/alarm",),
    )
    with pytest.raises(SimulationError, match="outside its declared read set"):
        Simulator(model, base_seed=1).run(50.0, rewards=[bad])


def test_declared_read_unknown_place_raises():
    model = build_fleet(3, 0.1, 2.0, 2)
    bad = RateReward("bad", lambda m: 0.0, reads=("sys/no_such_place",))
    with pytest.raises(SimulationError, match="matches no place"):
        Simulator(model, base_seed=1).run(50.0, rewards=[bad])


def test_probe_beyond_until_raises():
    model = build_fleet(3, 0.1, 2.0, 2)
    rw = RateReward("x", lambda m: 1.0, probe_times=[120.0])
    with pytest.raises(SimulationError, match="exceeds until"):
        Simulator(model, base_seed=1).run(100.0, rewards=[rw])


def test_bad_engine_name_raises():
    model = build_fleet(2, 0.1, 2.0, 1)
    with pytest.raises(SimulationError, match="engine"):
        Simulator(model, engine="turbo")


@pytest.mark.parametrize("spares", [0, 2])
def test_cluster_measure_declarations_cover_tracked_reads(spares):
    """The slot-resolved cluster measures read via ``m.raw``, which the
    simulator's declared-reads verification cannot see.  This test makes
    the declaration guarantee real: the tracked read set of the
    path-based ``cfs_up_predicate`` twin must be covered by every
    declared read set built from ``_cfs_up_fast`` — a place added to one
    variant but not the other fails here."""
    from repro.cfs import abe_parameters
    from repro.cfs import measures as M
    from repro.cfs.cluster import build_cluster_node
    from repro.core import flatten

    params = abe_parameters().with_spare_oss(spares) if spares else abe_parameters()
    model = flatten(build_cluster_node(params))
    vec = model.new_marking()
    view = model.global_view(vec)
    up = M.cfs_up_predicate(model)
    vec.begin_tracking()
    up(view)  # all-up initial marking: no short-circuit, full read set
    tracked = set(vec.end_tracking())

    declared_up = {model.paths[p] for p in M._cfs_up_fast(model)[2]}
    assert tracked <= declared_up

    perceived = M.perceived_availability_reward(model, params)
    declared_perceived = {model.paths[p] for p in perceived.reads}
    assert tracked <= declared_perceived
    extra = {
        model.paths[M.resolve_slot_path(model, "*/client/switches_down")],
        model.paths[M.resolve_slot_path(model, "*/spine_up")],
    }
    assert extra <= declared_perceived

    storage = M.storage_availability_reward(model)
    declared_storage = {model.paths[p] for p in storage.reads}
    assert {model.paths[p] for p in M._storage_paths(model)} <= declared_storage


@pytest.mark.parametrize("seed", [0, 9])
def test_parallel_replications_match_serial(seed):
    """Reward metrics (including probes) are n_jobs-invariant."""
    model = build_fleet(4, 0.15, 3.0, 2)
    rewards = [
        RateReward(
            "busy",
            lambda m: 1.0 if m["sys/down_count"] > 0 else 0.0,
            window=(20.0, 180.0),
            probe_times=[50.0, 150.0],
        ),
        ImpulseReward("fails", "*/fail"),
    ]
    serial = replicate_runs(
        Simulator(model, base_seed=seed),
        200.0,
        n_replications=4,
        rewards=rewards,
    )
    parallel = replicate_runs(
        Simulator(model, base_seed=seed),
        200.0,
        n_replications=4,
        rewards=rewards,
        n_jobs=2,
    )
    assert serial.metrics == parallel.metrics
    for metric in serial.metrics:
        assert serial.samples(metric) == parallel.samples(metric), metric
