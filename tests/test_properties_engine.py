"""Property-based tests of the simulation engine on random models.

Hypothesis generates small random repairable-fleet models; the engine must
uphold structural invariants regardless of topology, rates and seeds:

* markings stay non-negative (the views enforce it — these tests verify no
  code path bypasses them);
* simulated time advances monotonically (checked via trace transitions);
* conservation: shared counters equal the sum of member states;
* rate rewards of indicator functions stay within [0, 1];
* reproducibility: identical seeds yield identical trajectories.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAN,
    BinaryTrace,
    Exponential,
    ImpulseReward,
    RateReward,
    Simulator,
    Uniform,
    flatten,
    join,
    replicate,
)


def build_fleet(n_units: int, fail_rate: float, repair_mean: float, threshold: int):
    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("down_count", 0)
    unit.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down_count", m["down_count"] + 1),
        ),
    )
    unit.timed(
        "repair",
        Uniform(0.5 * repair_mean, 1.5 * repair_mean),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
    )
    watch = SAN("watch")
    watch.place("down_count", 0)
    watch.place("alarm", 0)
    watch.instant(
        "raise",
        enabled=lambda m: m["down_count"] >= threshold and m["alarm"] == 0,
        effect=lambda m, rng: m.__setitem__("alarm", 1),
    )
    watch.instant(
        "clear",
        enabled=lambda m: m["down_count"] < threshold and m["alarm"] == 1,
        effect=lambda m, rng: m.__setitem__("alarm", 0),
    )
    tree = join(
        "sys",
        replicate("units", unit, n_units, shared=["down_count"]),
        watch,
        shared=["down_count"],
    )
    return flatten(tree)


fleet_params = st.tuples(
    st.integers(2, 6),               # units
    st.floats(0.01, 0.5),            # fail rate
    st.floats(0.5, 10.0),            # repair mean
    st.integers(1, 3),               # alarm threshold
    st.integers(0, 10_000),          # seed
)


@given(fleet_params)
@settings(max_examples=25, deadline=None)
def test_conservation_and_bounds(params):
    n_units, fail_rate, repair_mean, threshold, seed = params
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    sim = Simulator(model, base_seed=seed)
    rw = RateReward(
        "frac_down", lambda m: m["sys/down_count"] / float(n_units)
    )
    res = sim.run(200.0, rewards=[rw])

    # conservation: counter equals number of down units in the final state
    down_units = sum(
        res.place(f"sys/units/unit[{i}]/up") == 0 for i in range(n_units)
    )
    assert res.place("sys/down_count") == down_units
    # indicator-style reward bounded
    assert 0.0 <= res["frac_down"].time_average <= 1.0
    # alarm consistent with the threshold in the final marking
    assert res.place("sys/watch/alarm") == int(down_units >= threshold)


@given(fleet_params)
@settings(max_examples=15, deadline=None)
def test_trace_time_monotone_and_alternating(params):
    n_units, fail_rate, repair_mean, threshold, seed = params
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    sim = Simulator(model, base_seed=seed)
    tr = BinaryTrace("alarm", lambda m: m["sys/watch/alarm"] == 1)
    res = sim.run(200.0, traces=[tr])
    transitions = res.trace("alarm").transitions
    times = [t for t, _v in transitions]
    assert times == sorted(times)
    values = [v for _t, v in transitions]
    assert all(a != b for a, b in zip(values, values[1:]))


@given(fleet_params)
@settings(max_examples=10, deadline=None)
def test_reproducibility(params):
    n_units, fail_rate, repair_mean, threshold, seed = params
    model = build_fleet(n_units, fail_rate, repair_mean, threshold)
    imp = ImpulseReward("fails", "*/fail")
    r1 = Simulator(model, base_seed=seed).run(100.0, rewards=[imp])
    r2 = Simulator(model, base_seed=seed).run(100.0, rewards=[imp])
    assert r1["fails"].count == r2["fails"].count
    assert r1.n_events == r2.n_events
    assert r1._final_values == r2._final_values


@given(
    st.integers(2, 5),
    st.floats(0.05, 0.5),
    st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_impulse_counts_match_place_counters(n_units, rate, seed):
    """Impulse reward on 'fail' must equal total down_count increments."""
    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("fails_total", 0)
    unit.timed(
        "fail",
        Exponential(rate),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("fails_total", m["fails_total"] + 1),
        ),
    )
    unit.timed(
        "repair",
        Exponential(1.0),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: m.__setitem__("up", 1),
    )
    model = flatten(replicate("sys", unit, n_units, shared=["fails_total"]))
    sim = Simulator(model, base_seed=seed)
    imp = ImpulseReward("f", "*/fail")
    res = sim.run(300.0, rewards=[imp])
    assert res["f"].count == res.place("sys/fails_total")
