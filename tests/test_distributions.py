"""Distribution laws: moments, survival functions, conversions, sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Deterministic,
    Empirical,
    EquilibriumResidual,
    Erlang,
    Exponential,
    Gamma,
    LogNormal,
    ModelError,
    Shifted,
    Uniform,
    Weibull,
    afr_to_mtbf,
    make_generator,
    mtbf_to_afr,
)

RNG = make_generator(7)


class TestConversions:
    def test_afr_mtbf_roundtrip(self):
        assert afr_to_mtbf(mtbf_to_afr(300_000.0)) == pytest.approx(300_000.0)

    def test_paper_pairing(self):
        # AFR 2.92% <-> MTBF 300000 h is the exact pairing the paper quotes.
        assert mtbf_to_afr(300_000.0) == pytest.approx(0.0292, rel=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            afr_to_mtbf(0.0)
        with pytest.raises(ModelError):
            mtbf_to_afr(-1.0)


class TestExponential:
    def test_mean(self):
        assert Exponential(0.25).mean() == pytest.approx(4.0)

    def test_survival(self):
        d = Exponential(0.5)
        assert d.survival(0.0) == 1.0
        assert d.survival(2.0) == pytest.approx(math.exp(-1.0))

    def test_per_period(self):
        d = Exponential.per_period(1.5, 720.0)
        assert d.rate == pytest.approx(1.5 / 720.0)

    def test_from_mean(self):
        assert Exponential.from_mean(20.0).rate == pytest.approx(0.05)

    def test_is_exponential_flag(self):
        assert Exponential(1.0).is_exponential
        assert not Weibull(0.7, 100.0).is_exponential
        assert not Deterministic(1.0).is_exponential

    def test_sample_mean_matches(self):
        d = Exponential(0.1)
        xs = d.sample_many(make_generator(1), 20_000)
        assert xs.mean() == pytest.approx(10.0, rel=0.05)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ModelError):
            Exponential(0.0)


class TestWeibull:
    def test_from_mtbf_mean(self):
        w = Weibull.from_mtbf(0.7, 300_000.0)
        assert w.mean() == pytest.approx(300_000.0, rel=1e-9)

    def test_from_afr(self):
        w = Weibull.from_afr(0.7, 0.0292)
        assert w.afr == pytest.approx(0.0292, rel=1e-9)
        assert w.mtbf == pytest.approx(300_000.0, rel=1e-3)

    def test_shape_one_is_exponential_law(self):
        w = Weibull(1.0, 100.0)
        assert w.survival(50.0) == pytest.approx(math.exp(-0.5))

    def test_decreasing_hazard_for_shape_below_one(self):
        w = Weibull.from_mtbf(0.7, 1000.0)
        assert w.hazard(1.0) > w.hazard(10.0) > w.hazard(100.0)

    def test_hazard_at_zero_limits(self):
        assert Weibull(0.7, 100.0).hazard(0.0) == math.inf
        assert Weibull(2.0, 100.0).hazard(0.0) == 0.0
        assert Weibull(1.0, 100.0).hazard(0.0) == pytest.approx(0.01)

    def test_residual_sample_exceeds_zero(self):
        w = Weibull.from_mtbf(0.7, 1000.0)
        samples = [w.residual_sample(500.0, make_generator(i)) for i in range(50)]
        assert all(s >= 0.0 for s in samples)

    def test_residual_age_zero_equals_plain_sampling_law(self):
        w = Weibull.from_mtbf(0.7, 1000.0)
        xs = np.array([w.residual_sample(0.0, make_generator(i)) for i in range(2000)])
        assert xs.mean() == pytest.approx(1000.0, rel=0.15)

    def test_sample_mean(self):
        w = Weibull.from_mtbf(0.7, 300.0)
        xs = w.sample_many(make_generator(2), 40_000)
        assert xs.mean() == pytest.approx(300.0, rel=0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            Weibull(0.0, 1.0)
        with pytest.raises(ModelError):
            Weibull(1.0, 0.0)


class TestDeterministic:
    def test_sample_is_constant(self):
        d = Deterministic(4.0)
        assert d.sample(RNG) == 4.0
        assert d.mean() == 4.0

    def test_survival_step(self):
        d = Deterministic(4.0)
        assert d.survival(3.9) == 1.0
        assert d.survival(4.0) == 0.0

    def test_zero_allowed(self):
        assert Deterministic(0.0).sample(RNG) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            Deterministic(-1.0)


class TestUniform:
    def test_mean(self):
        assert Uniform(12.0, 36.0).mean() == pytest.approx(24.0)

    def test_bounds(self):
        d = Uniform(2.0, 6.0)
        xs = d.sample_many(make_generator(3), 1000)
        assert xs.min() >= 2.0 and xs.max() <= 6.0

    def test_survival(self):
        d = Uniform(10.0, 20.0)
        assert d.survival(5.0) == 1.0
        assert d.survival(15.0) == pytest.approx(0.5)
        assert d.survival(25.0) == 0.0

    def test_rejects_inverted(self):
        with pytest.raises(ModelError):
            Uniform(5.0, 2.0)


class TestLogNormal:
    def test_from_mean_cv(self):
        d = LogNormal.from_mean_cv(100.0, 0.5)
        assert d.mean() == pytest.approx(100.0)

    def test_sample_mean(self):
        d = LogNormal.from_mean_cv(10.0, 1.0)
        xs = d.sample_many(make_generator(4), 50_000)
        assert xs.mean() == pytest.approx(10.0, rel=0.07)

    def test_survival_median(self):
        d = LogNormal(math.log(10.0), 0.8)
        assert d.survival(10.0) == pytest.approx(0.5, abs=1e-9)


class TestGammaErlang:
    def test_gamma_mean(self):
        assert Gamma(3.0, 2.0).mean() == pytest.approx(6.0)

    def test_erlang_is_gamma(self):
        e = Erlang(3, 0.5)
        assert e.mean() == pytest.approx(6.0)
        assert e.stages == 3

    def test_erlang_survival_vs_sum_of_exponentials(self):
        e = Erlang(2, 1.0)
        # P(X > t) = e^-t (1 + t) for a 2-stage Erlang of rate 1.
        assert e.survival(1.5) == pytest.approx(math.exp(-1.5) * 2.5, rel=1e-6)

    def test_erlang_rejects_fractional_stages(self):
        with pytest.raises(ModelError):
            Erlang(0, 1.0)


class TestEmpiricalShifted:
    def test_empirical_resamples_observed(self):
        d = Empirical([1.0, 2.0, 3.0])
        xs = {d.sample(make_generator(i)) for i in range(50)}
        assert xs <= {1.0, 2.0, 3.0}
        assert d.mean() == pytest.approx(2.0)

    def test_empirical_survival(self):
        d = Empirical([1.0, 2.0, 3.0, 4.0])
        assert d.survival(2.5) == pytest.approx(0.5)

    def test_empirical_rejects_empty(self):
        with pytest.raises(ModelError):
            Empirical([])

    def test_shifted(self):
        d = Shifted(5.0, Exponential(1.0))
        assert d.mean() == pytest.approx(6.0)
        assert d.survival(4.0) == 1.0
        assert all(d.sample(make_generator(i)) >= 5.0 for i in range(20))


class TestEquilibriumResidual:
    def test_exponential_is_its_own_equilibrium(self):
        eq = EquilibriumResidual(Exponential(0.1))
        assert eq.mean() == pytest.approx(10.0)
        xs = np.array([eq.sample(make_generator(i)) for i in range(3000)])
        assert xs.mean() == pytest.approx(10.0, rel=0.1)

    def test_deterministic_equilibrium_is_uniform(self):
        eq = EquilibriumResidual(Deterministic(10.0))
        assert eq.mean() == pytest.approx(5.0)
        assert eq.cdf(5.0) == pytest.approx(0.5)

    def test_weibull_mean_formula(self):
        # E[residual] = E[X^2] / (2 E[X]) with E[X^2] = eta^2 Gamma(1+2/beta).
        w = Weibull.from_mtbf(0.7, 1000.0)
        eq = EquilibriumResidual(w)
        from scipy.special import gamma as G

        expected = (w.scale**2 * G(1 + 2 / 0.7)) / (2 * 1000.0)
        assert eq.mean() == pytest.approx(expected, rel=1e-9)

    def test_table_matches_exact_inversion(self):
        eq = EquilibriumResidual(Weibull.from_mtbf(0.7, 1000.0))
        for i in range(40):
            a = eq.sample(make_generator(900 + i))
            b = eq.sample_exact(make_generator(900 + i))
            assert a == pytest.approx(b, rel=1e-4, abs=1e-6)

    def test_sample_mean_matches_analytic(self):
        eq = EquilibriumResidual(Weibull.from_mtbf(0.7, 1000.0))
        xs = np.array([eq.sample(make_generator(i)) for i in range(4000)])
        assert xs.mean() == pytest.approx(eq.mean(), rel=0.1)

    def test_survival_monotone(self):
        eq = EquilibriumResidual(Weibull.from_mtbf(0.7, 100.0))
        values = [eq.survival(t) for t in (0.0, 1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values, reverse=True)


@given(
    shape=st.floats(0.5, 3.0),
    mtbf=st.floats(10.0, 1e6),
)
@settings(max_examples=50, deadline=None)
def test_weibull_from_mtbf_mean_property(shape: float, mtbf: float):
    """from_mtbf must invert the mean for any (shape, mtbf)."""
    w = Weibull.from_mtbf(shape, mtbf)
    assert w.mean() == pytest.approx(mtbf, rel=1e-9)


@given(rate=st.floats(1e-6, 1e3), t=st.floats(0.0, 1e4))
@settings(max_examples=50, deadline=None)
def test_exponential_survival_bounds_property(rate: float, t: float):
    s = Exponential(rate).survival(t)
    assert 0.0 <= s <= 1.0


@given(
    low=st.floats(0.0, 100.0),
    width=st.floats(0.001, 100.0),
    q=st.floats(0.0, 1.0),
)
@settings(max_examples=50, deadline=None)
def test_uniform_survival_is_linear_property(low, width, q):
    d = Uniform(low, low + width)
    t = low + q * width
    assert d.survival(t) == pytest.approx(1.0 - q, abs=1e-9)
