"""Shared fixtures and model builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SAN, Deterministic, Exponential, flatten


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


def build_two_state_san(
    name: str = "comp",
    fail_rate: float = 1 / 100.0,
    repair_rate: float = 1 / 10.0,
    deterministic_repair: bool = False,
):
    """A repairable component: the workhorse validation model."""
    san = SAN(name)
    san.place("up", 1)

    def fail(m, rng):
        m["up"] = 0

    def repair(m, rng):
        m["up"] = 1

    san.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=fail,
    )
    repair_dist = (
        Deterministic(1.0 / repair_rate)
        if deterministic_repair
        else Exponential(repair_rate)
    )
    san.timed(
        "repair",
        repair_dist,
        enabled=lambda m: m["up"] == 0,
        effect=repair,
    )
    return san


@pytest.fixture
def two_state_model():
    """Flattened two-state model with exponential repair."""
    return flatten(build_two_state_san())
