"""Shared fixtures for the test suite.

Model builders live in :mod:`_helpers` — import them explicitly
(``from _helpers import build_two_state_san``).  Importing them from
``conftest`` is unreliable: the name ``conftest`` resolves to whichever
conftest module pytest imported first, which is ``benchmarks/conftest.py``
when benchmarks are collected ahead of the tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import flatten

from _helpers import build_two_state_san

__all__ = ["build_two_state_san"]


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_state_model():
    """Flattened two-state model with exponential repair."""
    return flatten(build_two_state_san())
