"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("tables", "figures", "all", "calibrate", "simulate", "logs"):
            args = parser.parse_args(
                [cmd] + (["abe"] if cmd == "simulate" else [])
                + (["/tmp/x"] if cmd == "logs" else [])
            )
            assert args.command == cmd

    def test_simulate_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "nope"])


class TestCommands:
    def test_simulate_abe(self, capsys):
        code = main(
            ["simulate", "abe", "--replications", "2", "--hours", "1000", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cfs_availability" in out
        assert "96 TB usable" in out

    def test_simulate_spare_preset(self, capsys):
        code = main(
            ["simulate", "petascale-spare", "--replications", "1", "--hours", "500"]
        )
        assert code == 0
        assert "petascale+spare" in capsys.readouterr().out

    def test_logs_command(self, tmp_path, capsys):
        code = main(["logs", str(tmp_path / "out"), "--seed", "2013"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAN-log lines" in out
        assert (tmp_path / "out" / "san.log").exists()
        assert (tmp_path / "out" / "compute.log").exists()

    def test_tables_command(self, capsys):
        code = main(["tables", "--seed", "2013"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5"):
            assert marker in out


class TestResilienceFlags:
    def test_checkpoint_and_resume_are_aliases(self):
        parser = build_parser()
        a = parser.parse_args(["tables", "--checkpoint-dir", "/tmp/ck"])
        b = parser.parse_args(["tables", "--resume", "/tmp/ck"])
        assert a.checkpoint_dir == b.checkpoint_dir == "/tmp/ck"
        assert parser.parse_args(["all"]).checkpoint_dir is None
        assert (
            parser.parse_args(["calibrate", "--resume", "x"]).checkpoint_dir == "x"
        )

    def test_on_error_choices(self):
        parser = build_parser()
        assert parser.parse_args(["tables"]).on_error == "raise"
        assert (
            parser.parse_args(["tables", "--on-error", "collect"]).on_error
            == "collect"
        )
        with pytest.raises(SystemExit):
            parser.parse_args(["tables", "--on-error", "explode"])

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "tables", boom)
        assert main(["tables"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_tables_checkpoint_resume_smoke(self, tmp_path, capsys):
        """A checkpointed tables run journals its cells; the rerun loads
        them (same output) instead of recomputing."""
        ckpt = tmp_path / "ck"
        assert main(["tables", "--checkpoint-dir", str(ckpt)]) == 0
        first = capsys.readouterr().out
        journaled = list(ckpt.glob("*.pkl"))
        assert len(journaled) == 5  # one entry per table cell
        assert main(["tables", "--resume", str(ckpt)]) == 0
        assert capsys.readouterr().out == first
