"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("tables", "figures", "all", "calibrate", "simulate", "logs"):
            args = parser.parse_args(
                [cmd] + (["abe"] if cmd == "simulate" else [])
                + (["/tmp/x"] if cmd == "logs" else [])
            )
            assert args.command == cmd

    def test_simulate_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "nope"])


class TestCommands:
    def test_simulate_abe(self, capsys):
        code = main(
            ["simulate", "abe", "--replications", "2", "--hours", "1000", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cfs_availability" in out
        assert "96 TB usable" in out

    def test_simulate_spare_preset(self, capsys):
        code = main(
            ["simulate", "petascale-spare", "--replications", "1", "--hours", "500"]
        )
        assert code == 0
        assert "petascale+spare" in capsys.readouterr().out

    def test_logs_command(self, tmp_path, capsys):
        code = main(["logs", str(tmp_path / "out"), "--seed", "2013"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAN-log lines" in out
        assert (tmp_path / "out" / "san.log").exists()
        assert (tmp_path / "out" / "compute.log").exists()

    def test_tables_command(self, capsys):
        code = main(["tables", "--seed", "2013"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5"):
            assert marker in out
