"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("tables", "figures", "all", "calibrate", "simulate", "logs"):
            args = parser.parse_args(
                [cmd] + (["abe"] if cmd == "simulate" else [])
                + (["/tmp/x"] if cmd == "logs" else [])
            )
            assert args.command == cmd

    def test_simulate_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "nope"])


class TestCommands:
    def test_simulate_abe(self, capsys):
        code = main(
            ["simulate", "abe", "--replications", "2", "--hours", "1000", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cfs_availability" in out
        assert "96 TB usable" in out

    def test_simulate_spare_preset(self, capsys):
        code = main(
            ["simulate", "petascale-spare", "--replications", "1", "--hours", "500"]
        )
        assert code == 0
        assert "petascale+spare" in capsys.readouterr().out

    def test_logs_command(self, tmp_path, capsys):
        code = main(["logs", str(tmp_path / "out"), "--seed", "2013"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAN-log lines" in out
        assert (tmp_path / "out" / "san.log").exists()
        assert (tmp_path / "out" / "compute.log").exists()

    def test_tables_command(self, capsys):
        code = main(["tables", "--seed", "2013"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5"):
            assert marker in out


class TestResilienceFlags:
    def test_checkpoint_and_resume_are_aliases(self):
        parser = build_parser()
        a = parser.parse_args(["tables", "--checkpoint-dir", "/tmp/ck"])
        b = parser.parse_args(["tables", "--resume", "/tmp/ck"])
        assert a.checkpoint_dir == b.checkpoint_dir == "/tmp/ck"
        assert parser.parse_args(["all"]).checkpoint_dir is None
        assert (
            parser.parse_args(["calibrate", "--resume", "x"]).checkpoint_dir == "x"
        )

    def test_on_error_choices(self):
        parser = build_parser()
        assert parser.parse_args(["tables"]).on_error == "raise"
        assert (
            parser.parse_args(["tables", "--on-error", "collect"]).on_error
            == "collect"
        )
        with pytest.raises(SystemExit):
            parser.parse_args(["tables", "--on-error", "explode"])

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "tables", boom)
        assert main(["tables"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_tables_checkpoint_resume_smoke(self, tmp_path, capsys):
        """A checkpointed tables run journals its cells; the rerun loads
        them (same output) instead of recomputing."""
        ckpt = tmp_path / "ck"
        assert main(["tables", "--checkpoint-dir", str(ckpt)]) == 0
        first = capsys.readouterr().out
        journaled = list(ckpt.glob("*.pkl"))
        assert len(journaled) == 5  # one entry per table cell
        assert main(["tables", "--resume", str(ckpt)]) == 0
        assert capsys.readouterr().out == first


class TestFriendlyValidation:
    """Bad flag values die with exit 2 and a one-line message naming them."""

    def _expect_exit2(self, argv, capsys, needle):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        assert exc_info.value.code == 2
        assert needle in capsys.readouterr().err

    def test_rel_ci_out_of_range(self, capsys):
        self._expect_exit2(
            ["simulate", "abe", "--rel-ci", "1.5"], capsys, "must be in (0, 1), got 1.5"
        )
        self._expect_exit2(
            ["rare", "--rel-ci", "0"], capsys, "must be in (0, 1), got 0.0"
        )

    def test_splitting_not_increasing(self, capsys):
        self._expect_exit2(
            ["rare", "--splitting", "3,2,5"],
            capsys,
            "thresholds must be strictly increasing, got '3,2,5'",
        )

    def test_splitting_not_numbers(self, capsys):
        self._expect_exit2(
            ["rare", "--splitting", "one,two"],
            capsys,
            "thresholds must be comma-separated numbers, got 'one,two'",
        )

    def test_splitting_flag_forms(self):
        parser = build_parser()
        assert parser.parse_args(["rare"]).splitting is False
        assert parser.parse_args(["rare", "--splitting"]).splitting is True
        assert parser.parse_args(["rare", "--splitting", "1,2,3"]).splitting == (
            1.0,
            2.0,
            3.0,
        )

    def test_bad_chaos_env_exits_2(self, monkeypatch, capsys):
        from repro import cli

        ran = []
        monkeypatch.setitem(cli._COMMANDS, "tables", lambda args: ran.append(1) or 0)
        monkeypatch.setenv("REPRO_CHAOS", "{not json")
        assert main(["tables"]) == 2
        err = capsys.readouterr().err
        assert "invalid REPRO_CHAOS value" in err
        assert "'{not json'" in err
        assert not ran  # validation short-circuits before dispatch

    def test_good_chaos_env_still_dispatches(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setitem(cli._COMMANDS, "tables", lambda args: 0)
        monkeypatch.setenv("REPRO_CHAOS", '{"simulate": 0.0}')
        assert main(["tables"]) == 0


class TestSanitizerCommands:
    def test_lint_single_model(self, capsys):
        assert main(["lint", "abe"]) == 0
        out = capsys.readouterr().out
        assert "abe" in out and "clean" in out

    def test_lint_unknown_model(self, capsys):
        assert main(["lint", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert "unknown model 'warp-drive'" in err

    def test_simulate_sanitize(self, capsys):
        code = main(
            ["simulate", "abe", "--hours", "1000", "--seed", "5", "--sanitize"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "0 violation(s)" in out
