"""Statistical acceptance suite for the rare-event estimators.

The aggregate tier SAN (:func:`repro.experiments.rare.aggregate_tier_san`)
is state-for-state the CTMC of
:meth:`repro.markov.raid_markov.RAIDTierMarkov.absorbing_chain`, so the
Markov transient is the *exact* probability the estimators target.
That turns estimator validation into sharp statistical tests:

* **coverage** — over many independently seeded studies, the reported
  95% CI must contain the closed form at (nearly) the nominal rate for
  splitting, crude MC, and brute force alike;
* **deep tail** — the acceptance scenario from the PR issue: a
  petascale tier whose loss probability (~8e-6 per mission year) is
  invisible to fixed-count brute force (hundreds of replications, zero
  events) is estimated by RESTART splitting to the adaptive stopping
  rule's relative-CI target, with the closed form inside the CI.

Tolerances come from the estimator's *own* reported CI (with slack
factors noted inline), never from hand-picked epsilons.  Every study is
seeded, so the suite is deterministic — the binomial bounds below are
chosen so the fixed seeds pass with large margin while a biased
estimator (e.g. lineage-multiplied RESTART weights, ~3x low on the
small config) fails decisively.

Marked ``stats`` (excluded from the default run; the CI stats job runs
``-m stats``) and ``slow``.
"""

from __future__ import annotations

import pytest

from repro.core import Simulator, StoppingRule
from repro.experiments.rare import (
    aggregate_tier_san,
    brute_force_probability,
    splitting_probability,
    tier_level,
    tier_splitting_policy,
)
from repro.markov.raid_markov import RAIDTierMarkov

pytestmark = [pytest.mark.stats, pytest.mark.slow]


def closed_form(n, f, lam, mu, horizon):
    chain = RAIDTierMarkov(
        n_disks=n,
        fault_tolerance=f,
        disk_failure_rate=lam,
        disk_repair_rate=mu,
    ).absorbing_chain()
    return chain.transient(0, horizon)[f + 1]


class TestSmallConfigCoverage:
    """n=4 disks, tolerance 1: p ~ 0.19, cheap enough for 20 studies."""

    N, F, LAM, MU, T = 4, 1, 0.01, 0.5, 100.0

    @property
    def truth(self):
        return closed_form(self.N, self.F, self.LAM, self.MU, self.T)

    def model(self):
        return aggregate_tier_san(self.N, self.F, self.LAM, self.MU)

    def policy(self):
        return tier_splitting_policy(self.N, self.F, self.LAM, self.MU)

    def test_splitting_ci_coverage(self):
        """20 seeded splitting studies: >= 15 CIs must contain the
        closed form (nominal 95%; P[Binomial(20, .95) < 15] ~ 2e-5, so
        a failure means a real calibration defect, not bad luck)."""
        p, model, policy = self.truth, self.model(), self.policy()
        covered = sum(
            splitting_probability(
                Simulator(model, base_seed=1000 + i), self.T, policy,
                n_roots=120,
            ).estimate().contains(p)
            for i in range(20)
        )
        assert covered >= 15, f"splitting CI covered truth in {covered}/20"

    def test_crude_ci_coverage(self):
        p, model, policy = self.truth, self.model(), self.policy()
        covered = sum(
            splitting_probability(
                Simulator(model, base_seed=2000 + i), self.T,
                policy.crude(), n_roots=300,
            ).estimate().contains(p)
            for i in range(20)
        )
        assert covered >= 15, f"crude CI covered truth in {covered}/20"

    def test_brute_force_ci_coverage(self):
        p, model = self.truth, self.model()
        covered = sum(
            brute_force_probability(
                Simulator(model, base_seed=3000 + i), self.T, tier_level(),
                self.F + 1.0, n_replications=300,
            ).estimate().contains(p)
            for i in range(20)
        )
        assert covered >= 15, f"brute-force CI covered truth in {covered}/20"

    def test_splitting_agrees_within_reported_ci(self):
        """The issue's acceptance shape: one splitting estimate vs the
        closed form, tolerance = the estimator's own CI."""
        est = splitting_probability(
            Simulator(self.model(), base_seed=42), self.T, self.policy(),
            n_roots=300,
        )
        assert est.estimate().contains(self.truth), (
            f"estimate {est} excludes closed form {self.truth:.6g}"
        )


class TestMidConfigAgreement:
    """n=8 disks, tolerance 2: three splitting levels exercised."""

    N, F, LAM, MU, T = 8, 2, 0.02, 0.8, 200.0

    def test_splitting_agrees_within_reported_ci(self):
        p = closed_form(self.N, self.F, self.LAM, self.MU, self.T)
        est = splitting_probability(
            Simulator(
                aggregate_tier_san(self.N, self.F, self.LAM, self.MU),
                base_seed=4,
            ),
            self.T,
            tier_splitting_policy(self.N, self.F, self.LAM, self.MU),
            n_roots=120,
        )
        # 1.5x slack on the single fixed-seed study (~92% -> ~99.7%).
        assert abs(est.probability - p) <= 1.5 * est.half_width, (
            f"estimate {est} vs closed form {p:.6g}"
        )


class TestPetascaleDeepTail:
    """The acceptance scenario: a deep-tail data-loss probability
    unreachable by fixed-count brute force, estimated by splitting to
    the adaptive rule's relative-CI target."""

    N, F, LAM, MU, T = 480, 6, 1e-5, 0.02, 8760.0

    @property
    def truth(self):
        return closed_form(self.N, self.F, self.LAM, self.MU, self.T)

    def test_brute_force_sees_nothing(self):
        """p ~ 8e-6: 300 replications almost surely observe 0 events
        (P[at least one hit] ~ 0.24%^... ~ 300 * 8e-6 = 0.24%)."""
        est = brute_force_probability(
            Simulator(
                aggregate_tier_san(self.N, self.F, self.LAM, self.MU),
                base_seed=17,
            ),
            self.T,
            tier_level(),
            self.F + 1.0,
            n_replications=300,
        )
        assert est.n_hits == 0
        assert est.probability == 0.0

    def test_splitting_reaches_target_and_brackets_truth(self):
        p = self.truth
        assert p < 1e-5  # genuinely deep tail
        est = splitting_probability(
            Simulator(
                aggregate_tier_san(self.N, self.F, self.LAM, self.MU),
                base_seed=17,
            ),
            self.T,
            tier_splitting_policy(self.N, self.F, self.LAM, self.MU),
            n_roots=64,
            stopping=StoppingRule(rel_ci=0.35, min_replications=16, batch=8),
        )
        # The adaptive rule stopped at its target, below the cap.
        assert est.rel_half_width <= 0.35
        assert est.n_roots < 64
        # Same effort in brute-force terms would need ~1/p replications
        # per hit; the tree got thousands of weighted hits.
        assert est.n_hits > 100
        # 1.5x slack on the single fixed-seed study.
        assert abs(est.probability - p) <= 1.5 * est.half_width, (
            f"estimate {est} vs closed form {p:.6g}"
        )
