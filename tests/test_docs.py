"""Executable documentation: doctest the guide/README, check intra-repo links.

The user guide promises that every ``python`` fenced block runs top to
bottom; this suite extracts the blocks in order and executes them as one
script per file, so a stale snippet fails CI instead of misleading a
reader.  It also resolves every relative markdown link in the top-level
and ``docs/`` pages against the working tree.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: Files whose ``python`` fenced blocks must execute cleanly, in order.
DOCTESTED = [ROOT / "README.md", ROOT / "docs" / "guide.md"]

#: Files whose relative links must resolve.  PAPER/PAPERS/SNIPPETS are
#: retrieval artifacts (scraped markdown with dangling figure refs), not
#: documentation this repo maintains.
_EXCLUDED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}
LINK_CHECKED = sorted(
    p
    for p in list(ROOT.glob("*.md")) + list((ROOT / "docs").glob("*.md"))
    if p.name not in _EXCLUDED
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _snippets(path: Path) -> list[str]:
    return [m.group(1) for m in _FENCE.finditer(path.read_text())]


@pytest.mark.parametrize("path", DOCTESTED, ids=lambda p: p.name)
def test_python_snippets_execute(path):
    """Each documented file's snippets run as one sequential script."""
    blocks = _snippets(path)
    assert blocks, f"{path.name} has no python snippets to test"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        code = compile(block, f"<{path.name} block {i}>", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            snippet = "\n".join(
                f"    {line}" for line in block.strip().splitlines()
            )
            raise AssertionError(
                f"python block {i} of {path.name} raised "
                f"{type(exc).__name__}: {exc}\n{snippet}"
            ) from exc


@pytest.mark.parametrize("path", LINK_CHECKED, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    """Relative markdown links point at files that exist."""
    broken = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken intra-repo links: {broken}"
