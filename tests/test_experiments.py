"""Experiment regenerators: every table and figure, shape assertions."""

from __future__ import annotations

import pytest

from repro.experiments import (
    DEFAULT_AFRS,
    DEFAULT_CONFIGS,
    FigureResult,
    Series,
    SeriesPoint,
    TableResult,
    expected_replacements_per_week,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.loggen import generate_abe_logs


@pytest.fixture(scope="module")
def logs():
    """One shared synthesized log set for the table regenerators."""
    return generate_abe_logs(seed=2013)


class TestRunnerFormatting:
    def test_table_format_alignment(self):
        t = TableResult("T", "demo", ("a", "bb"), (("1", "2"), ("333", "4")))
        text = t.format()
        assert "T: demo" in text
        assert "333" in text

    def test_figure_format_and_lookup(self):
        from repro.core import Estimate

        est = Estimate.from_samples([1.0, 1.0])
        fig = FigureResult(
            "F", "demo", "x", "y",
            (Series("s1", (SeriesPoint(1.0, est),)),),
        )
        assert "s1" in fig.format()
        assert fig.series_by_label("s1").means() == [1.0]
        with pytest.raises(KeyError):
            fig.series_by_label("nope")


class TestTable1:
    def test_availability_in_paper_band(self, logs):
        res = run_table1(logs=logs)
        # the paper: "between 0.97 and 0.98 depending on the dates"
        assert 0.96 <= res.availability <= 0.985
        assert res.availability_low <= res.availability <= res.availability_high + 1e-9

    def test_rows_have_io_hardware_majority(self, logs):
        res = run_table1(logs=logs)
        causes = [r[0] for r in res.table.rows]
        assert causes.count("I/O hardware") >= len(causes) / 2

    def test_format_contains_hours_column(self, logs):
        text = run_table1(logs=logs).format()
        assert "Hours" in text and "SAN availability" in text


class TestTable2:
    def test_storm_days_and_peak(self, logs):
        res = run_table2(logs=logs)
        assert 5 <= res.n_storm_days <= 40  # paper shows 12 dates
        assert res.max_count <= 1200
        assert res.max_count >= 50  # at least one real storm

    def test_counts_positive(self, logs):
        res = run_table2(logs=logs)
        assert all(c > 0 for c in res.counts_by_day.values())


class TestTable3:
    def test_shape_matches_paper(self, logs):
        res = run_table3(logs=logs)
        s = res.statistics
        assert 40_000 <= s.total <= 50_000  # paper: 44085
        assert s.failed_transient > 3 * s.failed_other  # paper: ~6.7x
        assert 0.9 <= s.cluster_utility < 1.0

    def test_format(self, logs):
        text = run_table3(logs=logs).format()
        assert "transient" in text and "ratio" in text


class TestTable4:
    def test_shape_estimate_brackets_truth(self):
        res = run_table4()
        lo, hi = res.fit.shape_confidence_interval()
        assert lo < 0.7 < hi
        # comparable uncertainty to the paper's reported sd 0.19 (log form)
        assert 0.05 < res.fit.se_log_shape < 0.5

    def test_failure_count_order_of_magnitude(self):
        res = run_table4()
        # paper window: 11 failures; infant mortality makes single digits
        # to low tens plausible
        assert 2 <= res.failures_in_window <= 25

    def test_format(self):
        text = run_table4().format()
        assert "Weibull regression" in text


class TestTable5:
    def test_presets_rendered(self):
        res = run_table5()
        text = res.format()
        assert "Disk MTBF" in text
        assert "8+2" in text
        assert res.abe.n_ddn_units == 2
        assert res.petascale.n_ddn_units == 20

    def test_row_count(self):
        assert len(run_table5().table.rows) >= 14


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(n_steps=3, n_replications=4, hours=8760.0, base_seed=10)


class TestFigure2:
    def test_all_configs_near_one_at_abe(self, figure2):
        for series in figure2.series:
            assert series.points[0].estimate.mean > 0.995

    def test_fitted_config_stays_high(self, figure2):
        fitted = figure2.series_by_label("0.7,2.92,8+2,4")
        assert all(p.estimate.mean > 0.99 for p in fitted.points)

    def test_x_axis_spans_96tb_to_12pb(self, figure2):
        xs = figure2.series[0].xs()
        assert xs[0] == pytest.approx(120.0)
        assert xs[-1] == pytest.approx(12_288.0, rel=0.02)

    def test_labels_match_paper_tuples(self, figure2):
        labels = {s.label for s in figure2.series}
        assert "0.6,8.76,8+2,4" in labels
        assert "0.7,2.92,8+2,4" in labels


class TestFigure2Ordering:
    def test_worse_disks_lose_more_storage_availability(self):
        """Statistical-power version: compare data-loss rates directly for
        the best and worst configurations at petascale."""
        from repro.cfs.cluster import StorageModel
        from repro.cfs.scaling import scale_step
        from repro.core import replicate_runs

        rates = {}
        for label, kw in (
            ("worst", dict(shape=0.6, afr=0.0876)),
            ("best", dict(shape=0.7, afr=0.0292)),
        ):
            params = scale_step(10, 10).with_disks(**kw)
            model = StorageModel(params, base_seed=77)
            exp = replicate_runs(
                model.simulator, 8760.0, n_replications=6,
                rewards=model.measures.rewards,
                extra_metrics=model.measures.extra_metrics,
            )
            rates[label] = exp.estimate("data_loss_events").mean
        assert rates["worst"] > rates["best"]

    def test_more_parity_fewer_losses(self):
        from repro.cfs.cluster import StorageModel
        from repro.cfs.scaling import scale_step
        from repro.core import replicate_runs
        from repro.raid import RAID6_8P2, RAID_8P3

        losses = {}
        for raid in (RAID6_8P2, RAID_8P3):
            params = scale_step(10, 10).with_disks(
                shape=0.6, afr=0.0876, raid=raid
            )
            model = StorageModel(params, base_seed=78)
            exp = replicate_runs(
                model.simulator, 8760.0, n_replications=6,
                rewards=model.measures.rewards,
                extra_metrics=model.measures.extra_metrics,
            )
            losses[raid.label] = exp.estimate("data_loss_events").mean
        assert losses["8+3"] <= losses["8+2"]


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(
        afrs=(0.0876, 0.0292), n_steps=3, n_replications=4, hours=8760.0, base_seed=20
    )


class TestFigure3:
    def test_linear_in_fleet_size(self, figure3):
        for series in figure3.series:
            means = series.means()
            xs = series.xs()
            # 10x disks -> ~10x replacements
            assert means[-1] / max(means[0], 1e-9) == pytest.approx(
                xs[-1] / xs[0], rel=0.35
            )

    def test_ordering_by_afr(self, figure3):
        high = figure3.series_by_label("0.7,8.76,8+2,4").means()
        low = figure3.series_by_label("0.7,2.92,8+2,4").means()
        assert all(h > l for h, l in zip(high, low))

    def test_matches_renewal_prediction(self, figure3):
        for series, afr in zip(figure3.series, (0.0876, 0.0292)):
            for point in series.points:
                expected = expected_replacements_per_week(int(point.x), afr)
                assert point.estimate.mean == pytest.approx(expected, rel=0.35)

    def test_abe_config_zero_to_two_per_week(self, figure3):
        abe_point = figure3.series_by_label("0.7,2.92,8+2,4").points[0]
        assert 0.0 <= abe_point.estimate.mean <= 2.0

    def test_analytic_helper(self):
        assert expected_replacements_per_week(480, 0.0292) == pytest.approx(
            0.2688, rel=0.01
        )


@pytest.fixture(scope="module")
def figure4():
    return run_figure4(n_steps=3, n_replications=5, hours=8760.0, base_seed=30)


class TestFigure4:
    def test_four_series_present(self, figure4):
        labels = [s.label for s in figure4.series]
        assert labels == [
            "Storage-availability",
            "CFS-Availability",
            "CU",
            "CFS-Availability-spare-OSS",
        ]

    def test_storage_stays_near_one(self, figure4):
        storage = figure4.series_by_label("Storage-availability")
        assert all(p.estimate.mean > 0.99 for p in storage.points)

    def test_cfs_availability_declines(self, figure4):
        cfs = figure4.series_by_label("CFS-Availability").means()
        assert cfs[0] > cfs[-1]
        assert cfs[0] == pytest.approx(0.972, abs=0.02)
        assert cfs[-1] == pytest.approx(0.909, abs=0.025)

    def test_cu_below_cfs(self, figure4):
        cfs = figure4.series_by_label("CFS-Availability").means()
        cu = figure4.series_by_label("CU").means()
        assert all(c < a for c, a in zip(cu, cfs))

    def test_spare_recovers_availability_at_scale(self, figure4):
        cfs = figure4.series_by_label("CFS-Availability").means()
        spare = figure4.series_by_label("CFS-Availability-spare-OSS").means()
        # at the petascale end the spare must win by roughly the paper's 3%
        delta = spare[-1] - cfs[-1]
        assert 0.01 < delta < 0.08
