"""Mutation corpus for the model-integrity sanitizer.

Each :class:`Mutant` is a pair of models built from the same factory:
``build(False)`` is the clean twin, ``build(True)`` injects exactly one
declaration defect.  ``channel`` names the detector that must flag the
mutated model (``"sanitize"`` — the instrumented ``engine="sanitize"``
run — or ``"lint"`` — the static :func:`repro.core.lint_model` pass) and
``expect`` is the :class:`SanitizerViolation` kind / :class:`LintFinding`
code it must produce.  Clean twins must come back spotless on *both*
channels; mutants flagged only at runtime (short-circuit reads, mid-run
case sums) additionally assert the lint pass stays clean, pinning down
which layer owns the catch.

``tests/test_mutants.py`` sweeps the whole corpus; the CI ``sanitize``
job runs it as the blocking mutation suite.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core import (
    SAN,
    Affine,
    Case,
    Exponential,
    Indicator,
    RateReward,
    Simulator,
    flatten,
)


@dataclass(frozen=True)
class Mutant:
    """One corrupted-declaration scenario plus its clean twin."""

    name: str
    channel: str  # "sanitize" | "lint"
    expect: str  # SanitizerViolation.kind or LintFinding.code
    build: Callable[[bool], tuple]  # mutate -> (san, rewards)
    hours: float = 400.0
    #: Defects only an instrumented run can see (short-circuit reads,
    #: mid-run case sums): the mutated model must still lint clean.
    lint_clean_when_mutated: bool = False


def run_sanitize(san, rewards: Sequence = (), hours: float = 400.0, seed: int = 7):
    """Run the instrumented engine over a corpus model, return the report."""
    sim = Simulator(
        flatten(san), base_seed=seed, sample_batch=None, engine="sanitize"
    )
    with warnings.catch_warnings():
        # The report is inspected directly; the advisory warning is noise.
        warnings.simplefilter("ignore", RuntimeWarning)
        result = sim.run(hours, rewards=tuple(rewards))
    return result.sanitizer_report


# ---------------------------------------------------------------------------
# Shared factories
# ---------------------------------------------------------------------------


def _machine(fail_kw: dict | None = None, repair_kw: dict | None = None) -> SAN:
    """Repairable machine: the standard declared-dependency base model."""
    s = SAN("m")
    s.place("up", 1)
    s.place("down", 0)
    s.place("count", 0)
    fk = dict(
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down", 1),
        ),
        reads=["up"],
        writes=[("up", "set", 0), ("down", "set", 1)],
    )
    fk.update(fail_kw or {})
    s.timed("fail", Exponential(0.1), **fk)
    rk = dict(
        enabled=lambda m: m["down"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("down", 0),
            m.__setitem__("up", 1),
            m.__setitem__("count", m["count"] + 1),
        ),
        reads=["down"],
        writes=[("down", "set", 0), ("up", "set", 1), ("count", "add", 1)],
    )
    rk.update(repair_kw or {})
    s.timed("repair", Exponential(1.0), **rk)
    return s


def _coin(case_a: Case, case_b: Case) -> SAN:
    """Two-outcome spinner used by the case-kernel mutants."""
    s = SAN("coin")
    s.place("heads", 0)
    s.place("tails", 0)
    s.timed(
        "flip",
        Exponential(1.0),
        enabled=lambda m: m["heads"] >= 0,
        reads=["heads"],
        cases=[case_a, case_b],
    )
    return s


# ---------------------------------------------------------------------------
# Sanitize-channel mutants: instrumented execution catches the defect
# ---------------------------------------------------------------------------


def _m_wrong_add_amount(mutate: bool):
    step = 2 if mutate else 1
    san = _machine(
        repair_kw=dict(
            effect=lambda m, rng: (
                m.__setitem__("down", 0),
                m.__setitem__("up", 1),
                m.__setitem__("count", m["count"] + step),
            ),
        )
    )
    return san, ()


def _m_extra_undeclared_write(mutate: bool):
    def effect(m, rng):
        m["up"] = 0
        m["down"] = 1
        if mutate:
            m["count"] = m["count"] + 1

    san = _machine(fail_kw=dict(effect=effect))
    return san, ()


def _m_wrong_set_value(mutate: bool):
    tokens = 2 if mutate else 1
    san = _machine(
        fail_kw=dict(
            effect=lambda m, rng: (
                m.__setitem__("up", 0),
                m.__setitem__("down", tokens),
            ),
        )
    )
    return san, ()


def _m_declared_write_skipped(mutate: bool):
    def effect(m, rng):
        m["down"] = 0
        m["up"] = 1
        if not mutate:
            m["count"] = m["count"] + 1

    san = _machine(repair_kw=dict(effect=effect))
    return san, ()


def _m_guard_comparison(mutate: bool):
    cap = 2 if mutate else 3
    s = SAN("g")
    s.place("tokens", 0)
    s.timed(
        "tick",
        Exponential(1.0),
        enabled=lambda m: m["tokens"] >= 0,
        effect=lambda m, rng: (
            m.__setitem__("tokens", m["tokens"] + 1) if m["tokens"] < cap else None
        ),
        reads=["tokens"],
        writes=[("tokens", "add", 1)],
        when=("tokens", "<", 3),
    )
    return s, ()


def _m_case_branch0(mutate: bool):
    step = 2 if mutate else 1

    def heads(m, rng):
        m["heads"] = m["heads"] + step

    def tails(m, rng):
        m["tails"] = m["tails"] + 1

    san = _coin(
        Case(0.7, heads, name="heads", writes=[("heads", "add", 1)]),
        Case(0.3, tails, name="tails", writes=[("tails", "add", 1)]),
    )
    return san, ()


def _m_case_branch1(mutate: bool):
    step = 2 if mutate else 1

    def heads(m, rng):
        m["heads"] = m["heads"] + 1

    def tails(m, rng):
        m["tails"] = m["tails"] + step

    san = _coin(
        Case(0.7, heads, name="heads", writes=[("heads", "add", 1)]),
        Case(0.3, tails, name="tails", writes=[("tails", "add", 1)]),
    )
    return san, ()


def _m_noop_case_writes(mutate: bool):
    def skip(m, rng):
        if mutate:
            m["heads"] = m["heads"] + 1

    def tails(m, rng):
        m["tails"] = m["tails"] + 1

    san = _coin(
        Case(0.5, skip, name="skip", writes=()),
        Case(0.5, tails, name="tails", writes=[("tails", "add", 1)]),
    )
    return san, ()


def _m_initial_undeclared_read(mutate: bool):
    if mutate:
        enabled = lambda m: m["up"] == 1 and m["count"] >= 0  # noqa: E731
    else:
        enabled = lambda m: m["up"] == 1  # noqa: E731
    san = _machine(fail_kw=dict(enabled=enabled))
    return san, ()


def _m_short_circuit_read(mutate: bool):
    # The extra read hides behind ``down == 1``: false on the initial
    # marking, so the static pass cannot see it — only the shadow run.
    if mutate:
        enabled = lambda m: m["down"] == 1 and m["count"] >= 0  # noqa: E731
    else:
        enabled = lambda m: m["down"] == 1  # noqa: E731
    san = _machine(repair_kw=dict(enabled=enabled))
    return san, ()


def _m_distribution_read(mutate: bool):
    if mutate:
        reads = ["down"]
    else:
        reads = ["down", "count"]
    # Hand-built machine: "repair" gets a marking-dependent rate that
    # reads count, declared (clean) or omitted (mutant).
    s = SAN("m")
    s.place("up", 1)
    s.place("down", 0)
    s.place("count", 0)
    s.timed(
        "fail",
        Exponential(0.1),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down", 1),
        ),
        reads=["up"],
        writes=[("up", "set", 0), ("down", "set", 1)],
    )
    s.timed(
        "repair",
        lambda m: Exponential(1.0 + 0.01 * m["count"]),
        enabled=lambda m: m["down"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("down", 0),
            m.__setitem__("up", 1),
            m.__setitem__("count", m["count"] + 1),
        ),
        reads=reads,
        writes=[("down", "set", 0), ("up", "set", 1), ("count", "add", 1)],
    )
    return s, ()


def _m_rng_in_declared_effect(mutate: bool):
    def effect(m, rng):
        if mutate:
            rng.uniform()  # entropy a compiled kernel would never draw
        m["down"] = 0
        m["up"] = 1
        m["count"] = m["count"] + 1

    san = _machine(repair_kw=dict(effect=effect))
    return san, ()


def _m_reward_short_circuit(mutate: bool):
    def value(m):
        if m["m/down"]:
            return float(m["m/count"])
        return float(m["m/up"])

    reads = ["m/down", "m/up"] if mutate else ["m/down", "m/up", "m/count"]
    reward = RateReward("probe", value, reads=reads)
    return _machine(), (reward,)


def _m_indicator_mismatch(mutate: bool):
    high = 0.5 if mutate else 1.0

    def value(m):
        return high if m["m/up"] >= 1 else 0.0

    reward = RateReward(
        "avail", value, form=Indicator([("m/up", ">=", 1)], value=1.0)
    )
    return _machine(), (reward,)


def _m_affine_mismatch(mutate: bool):
    coef = 2.0 if mutate else 1.0

    def value(m):
        return coef * m["m/count"]

    reward = RateReward(
        "repairs", value, form=Affine(0.0, terms=[("m/count", 1.0)])
    )
    return _machine(), (reward,)


def _m_midrun_case_sum(mutate: bool):
    bump = 0.6 if mutate else 0.5

    def p_heads(m):
        return 0.5 if m["heads"] + m["tails"] == 0 else bump

    def p_tails(m):
        return 0.5

    def heads(m, rng):
        m["heads"] = m["heads"] + 1

    def tails(m, rng):
        m["tails"] = m["tails"] + 1

    san = _coin(
        Case(p_heads, heads, name="heads"),
        Case(p_tails, tails, name="tails"),
    )
    return san, ()


def _m_reward_nan(mutate: bool):
    def value(m):
        if m["m/count"] >= 1:
            return float("nan") if mutate else 1.0
        return 1.0

    return _machine(), (RateReward("haz", value),)


# ---------------------------------------------------------------------------
# Lint-channel mutants: the static pass catches the defect
# ---------------------------------------------------------------------------


def _m_unresolved_read(mutate: bool):
    reads = ["up", "ghost"] if mutate else ["up"]
    return _machine(fail_kw=dict(reads=reads)), ()


def _m_unresolved_write(mutate: bool):
    target = "ghost" if mutate else "down"
    san = _machine(
        fail_kw=dict(writes=[("up", "set", 0), (target, "set", 1)])
    )
    return san, ()


def _m_unresolved_guard(mutate: bool):
    place = "ghost" if mutate else "tokens"
    s = SAN("g")
    s.place("tokens", 0)
    s.timed(
        "tick",
        Exponential(1.0),
        enabled=lambda m: m["tokens"] >= 0,
        effect=lambda m, rng: (
            m.__setitem__("tokens", m["tokens"] + 1) if m["tokens"] < 3 else None
        ),
        reads=["tokens"],
        writes=[("tokens", "add", 1)],
        when=(place, "<", 3),
    )
    return s, ()


def _m_nan_dist_param(mutate: bool):
    dist = Exponential(0.1)
    if mutate:
        # The constructor rejects NaN rates, so model corruption has to
        # sneak past it — exactly what the lint parameter walk is for.
        object.__setattr__(dist, "rate", float("nan"))
    s = SAN("m")
    s.place("up", 1)
    s.place("down", 0)
    s.timed(
        "fail",
        dist,
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down", 1),
        ),
        reads=["up"],
        writes=[("up", "set", 0), ("down", "set", 1)],
    )
    s.timed(
        "repair",
        Exponential(1.0),
        enabled=lambda m: m["down"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("down", 0),
            m.__setitem__("up", 1),
        ),
        reads=["down"],
        writes=[("down", "set", 0), ("up", "set", 1)],
    )
    return s, ()


def _m_non_distribution_callable(mutate: bool):
    if mutate:
        draw = lambda m: 1.5  # noqa: E731 - not a Distribution
    else:
        draw = lambda m: Exponential(1.5)  # noqa: E731
    s = SAN("m")
    s.place("tokens", 0)
    s.timed(
        "tick",
        draw,
        enabled=lambda m: m["tokens"] >= 0,
        effect=lambda m, rng: m.__setitem__("tokens", m["tokens"] + 1),
        reads=["tokens"],
        writes=[("tokens", "add", 1)],
    )
    return s, ()


def _m_initial_case_sum(mutate: bool):
    p = 0.6 if mutate else 0.5

    def heads(m, rng):
        m["heads"] = m["heads"] + 1

    def tails(m, rng):
        m["tails"] = m["tails"] + 1

    san = _coin(
        Case(lambda m: p, heads, name="heads"),
        Case(lambda m: p, tails, name="tails"),
    )
    return san, ()


def _m_unreachable_activity(mutate: bool):
    san = _machine()
    if mutate:
        san.place("never", 0)
        san.timed(
            "ghost",
            Exponential(1.0),
            enabled=lambda m: m["never"] >= 1,
            effect=lambda m, rng: m.__setitem__("count", m["count"] + 1),
            reads=["never"],
            writes=[("count", "add", 1)],
        )
    return san, ()


def _m_dead_place(mutate: bool):
    san = _machine()
    if mutate:
        san.place("orphan", 0)
    return san, ()


def _m_instant_cycle(mutate: bool):
    s = SAN("relay")
    s.place("a", 1)
    s.place("b", 0)
    s.place("sink", 0)
    s.instant(
        "ping",
        enabled=lambda m: m["a"] >= 1,
        effect=lambda m, rng: (
            m.__setitem__("a", m["a"] - 1),
            m.__setitem__("b", m["b"] + 1),
        ),
        reads=["a"],
        writes=[("a", "add", -1), ("b", "add", 1)],
    )
    if mutate:
        # pong feeds a back: ping and pong re-enable each other forever.
        s.instant(
            "pong",
            enabled=lambda m: m["b"] >= 1,
            effect=lambda m, rng: (
                m.__setitem__("b", m["b"] - 1),
                m.__setitem__("a", m["a"] + 1),
            ),
            reads=["b"],
            writes=[("b", "add", -1), ("a", "add", 1)],
        )
    else:
        s.instant(
            "pong",
            enabled=lambda m: m["b"] >= 1,
            effect=lambda m, rng: (
                m.__setitem__("b", m["b"] - 1),
                m.__setitem__("sink", m["sink"] + 1),
            ),
            reads=["b"],
            writes=[("b", "add", -1), ("sink", "add", 1)],
        )
    return s, ()


def _m_bad_predicate(mutate: bool):
    if mutate:
        enabled = lambda m: 1 // m["down"] > 0  # noqa: E731 - raises at down=0
    else:
        enabled = lambda m: m["down"] == 1  # noqa: E731
    san = _machine(repair_kw=dict(enabled=enabled))
    return san, ()


MUTANTS: tuple[Mutant, ...] = (
    # instrumented-run channel
    Mutant("wrong-add-amount", "sanitize", "write-mismatch", _m_wrong_add_amount),
    Mutant("extra-undeclared-write", "sanitize", "undeclared-write", _m_extra_undeclared_write),
    Mutant("wrong-set-value", "sanitize", "write-mismatch", _m_wrong_set_value),
    Mutant("declared-write-skipped", "sanitize", "write-mismatch", _m_declared_write_skipped),
    Mutant("guard-comparison", "sanitize", "write-mismatch", _m_guard_comparison),
    Mutant("case-branch0-mismatch", "sanitize", "write-mismatch", _m_case_branch0),
    Mutant("case-branch1-mismatch", "sanitize", "write-mismatch", _m_case_branch1),
    Mutant("noop-case-writes", "sanitize", "undeclared-write", _m_noop_case_writes),
    Mutant("initial-undeclared-read", "sanitize", "undeclared-read", _m_initial_undeclared_read),
    Mutant(
        "short-circuit-read",
        "sanitize",
        "undeclared-read",
        _m_short_circuit_read,
        lint_clean_when_mutated=True,
    ),
    Mutant("distribution-read", "sanitize", "undeclared-read", _m_distribution_read),
    Mutant("rng-in-declared-effect", "sanitize", "rng-in-declared-effect", _m_rng_in_declared_effect),
    Mutant(
        "reward-short-circuit",
        "sanitize",
        "undeclared-read",
        _m_reward_short_circuit,
        lint_clean_when_mutated=True,
    ),
    Mutant("indicator-mismatch", "sanitize", "form-mismatch", _m_indicator_mismatch),
    Mutant("affine-mismatch", "sanitize", "form-mismatch", _m_affine_mismatch),
    Mutant(
        "midrun-case-sum",
        "sanitize",
        "case-sum",
        _m_midrun_case_sum,
        lint_clean_when_mutated=True,
    ),
    Mutant(
        "reward-nan",
        "sanitize",
        "non-finite-reward",
        _m_reward_nan,
        lint_clean_when_mutated=True,
    ),
    # static-lint channel
    Mutant("unresolved-read", "lint", "unresolved-read", _m_unresolved_read),
    Mutant("unresolved-write", "lint", "unresolved-write", _m_unresolved_write),
    Mutant("unresolved-guard", "lint", "unresolved-guard", _m_unresolved_guard),
    Mutant("nan-dist-param", "lint", "nan-distribution-param", _m_nan_dist_param),
    Mutant("non-distribution-callable", "lint", "bad-distribution", _m_non_distribution_callable),
    Mutant("initial-case-sum", "lint", "case-sum", _m_initial_case_sum),
    Mutant("unreachable-activity", "lint", "unreachable-activity", _m_unreachable_activity),
    Mutant("dead-place", "lint", "dead-place", _m_dead_place),
    Mutant("instant-cycle", "lint", "instant-cycle", _m_instant_cycle),
    Mutant("bad-predicate", "lint", "bad-predicate", _m_bad_predicate),
)
