"""Rare-event subsystem: differential and contract tests (fast).

Three contracts, each pinned bit-for-bit:

* the restart-from-marking primitive (``Simulator.run(...,
  initial_marking=...)``) leaves the default path byte-identical and
  continues stopped trajectories deterministically;
* splitting disabled *is* ``replicate_runs`` — same streams, same
  samples — and the splitting tree itself is identical for serial
  execution, any worker count, and repeated runs;
* adaptive CI stopping picks the same stopping replication count
  float-for-float whether the study runs serially, across any
  ``n_jobs``, or resumed from a sweep checkpoint.

The *statistical* properties (unbiasedness against the Markov closed
forms, CI coverage) live in ``tests/test_rare_stats.py`` (``-m stats``).
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    RateReward,
    SimulationError,
    Simulator,
    StoppingRule,
    flatten,
    make_generator,
    replicate_runs,
)
from repro.experiments import run_sweep
from repro.experiments.rare import (
    LevelFunction,
    SplittingPolicy,
    aggregate_tier_san,
    brute_force_probability,
    splitting_probability,
    suggested_splits,
    tier_level,
    tier_replication_spec,
    tier_splitting_policy,
)
from repro.experiments.sweep import cell_digest, replication_cell

from _helpers import build_two_state_san

# Small enough that every study here runs in milliseconds, rare enough
# (p ~ 0.19 over the horizon) that trees actually split and die.
N, F, LAM, MU, T = 4, 1, 0.01, 0.5, 100.0


def tier_model():
    return aggregate_tier_san(N, F, LAM, MU)


def tier_spec(seed):
    return tier_replication_spec(N, F, LAM, MU, seed)


def lost_reward():
    return [
        RateReward("lost", lambda m: float(m["tier/lost"]), reads=["tier/lost"])
    ]


class TestRestartHook:
    """``initial_marking`` on ``Simulator.run``."""

    def test_default_path_byte_identical(self):
        """Passing the model's own initial marking changes nothing."""
        model = flatten(build_two_state_san())
        a = Simulator(model, base_seed=11).run(500.0, rng=make_generator(1, "x"))
        b = Simulator(model, base_seed=11).run(
            500.0, rng=make_generator(1, "x"), initial_marking=model.initial
        )
        assert a.n_events == b.n_events
        assert a.final_time == b.final_time
        assert a.final_marking == b.final_marking

    def test_continuation_runs_from_stopped_state(self):
        model = tier_model()
        sim = Simulator(model, base_seed=3)
        first = sim.run(
            T,
            rng=make_generator(3, "seg", 0),
            stop_predicate=lambda m: m.raw[model.paths["tier/failed"]] >= 1,
        )
        assert first.stopped_early
        marking = first.final_marking
        assert marking[model.paths["tier/failed"]] == 1
        second = sim.run(
            T - first.final_time,
            rng=make_generator(3, "seg", 1),
            initial_marking=marking,
        )
        assert second.final_time <= T - first.final_time
        # The continuation really started from the degraded state: its
        # own final marking is a valid tier marking, and the original
        # simulator is reusable afterwards (marking restored per run).
        plain = sim.run(T, rng=make_generator(3, "seg", 2))
        assert not plain.stopped_early

    def test_restart_is_deterministic(self):
        model = tier_model()
        sim = Simulator(model, base_seed=3)
        marking = [2, 0]
        runs = [
            sim.run(T, rng=make_generator(9, "r"), initial_marking=marking)
            for _ in range(2)
        ]
        assert runs[0].n_events == runs[1].n_events
        assert runs[0].final_marking == runs[1].final_marking

    def test_rewards_integrate_from_restart_marking(self):
        model = tier_model()
        sim = Simulator(model, base_seed=3)
        # Start lost: the sticky flag freezes the chain, so the 'lost'
        # rate reward integrates to exactly 1.0.
        lost = [1 + F + 0, 1]
        lost[model.paths["tier/failed"]] = F + 1
        lost[model.paths["tier/lost"]] = 1
        res = sim.run(
            50.0,
            rng=make_generator(4, "r"),
            rewards=lost_reward(),
            initial_marking=lost,
        )
        assert res["lost"].time_average == 1.0

    def test_invalid_markings_raise(self):
        model = tier_model()
        sim = Simulator(model, base_seed=3)
        with pytest.raises(SimulationError, match="has 2 places|2 entries"):
            sim.run(T, rng=make_generator(1, "r"), initial_marking=[0])
        with pytest.raises(SimulationError, match=">= 0"):
            sim.run(T, rng=make_generator(1, "r"), initial_marking=[-1, 0])


class TestValidation:
    def test_level_function_rejects_bad_weights(self):
        with pytest.raises(SimulationError, match="no places"):
            LevelFunction("empty", {})
        with pytest.raises(SimulationError, match="positive finite"):
            LevelFunction("neg", {"tier/failed": -1.0})
        with pytest.raises(SimulationError, match="positive finite"):
            LevelFunction("zero", {"tier/failed": 0.0})
        with pytest.raises(SimulationError, match="positive finite"):
            LevelFunction("nan", {"tier/failed": float("nan")})

    def test_level_function_rejects_unknown_place(self):
        lf = LevelFunction("bad", {"tier/nonexistent": 1.0})
        with pytest.raises(SimulationError, match="unknown place"):
            lf.resolve(tier_model())

    def test_policy_rejects_bad_thresholds(self):
        lf = tier_level()
        with pytest.raises(SimulationError, match=">= 1 threshold"):
            SplittingPolicy(lf, ())
        with pytest.raises(SimulationError, match="strictly increasing"):
            SplittingPolicy(lf, (2.0, 1.0), (4,))
        with pytest.raises(SimulationError, match="one splitting factor"):
            SplittingPolicy(lf, (1.0, 2.0), ())
        with pytest.raises(SimulationError, match=">= 1"):
            SplittingPolicy(lf, (1.0, 2.0), (0,))

    def test_initial_marking_at_top_raises(self):
        model = tier_model()
        policy = SplittingPolicy(tier_level(), (0.0,))
        with pytest.raises(SimulationError, match="already at the top"):
            splitting_probability(
                Simulator(model, base_seed=1), T, policy, n_roots=4
            )

    def test_parallel_requires_spec(self):
        with pytest.raises(SimulationError, match="ReplicationSpec"):
            splitting_probability(
                Simulator(tier_model(), base_seed=1),
                T,
                tier_splitting_policy(N, F, LAM, MU),
                n_roots=8,
                n_jobs=2,
            )

    def test_suggested_splits_shape(self):
        splits = suggested_splits(N, F, LAM, MU)
        assert len(splits) == F
        assert all(s >= 1 for s in splits)
        policy = tier_splitting_policy(N, F, LAM, MU)
        assert policy.thresholds == tuple(float(j) for j in range(1, F + 2))
        assert policy.crude().thresholds == (float(F + 1),)
        assert policy.crude().splits == ()


class TestSplittingDifferentials:
    def test_serial_equals_parallel_roots(self):
        policy = tier_splitting_policy(N, F, LAM, MU)
        serial = splitting_probability(
            Simulator(tier_model(), base_seed=42), T, policy, n_roots=40
        )
        for jobs in (2, 3):
            par = splitting_probability(
                tier_spec(42), T, policy, n_roots=40, n_jobs=jobs
            )
            assert par.samples == serial.samples
            assert par.n_segments == serial.n_segments
            assert par.n_hits == serial.n_hits

    def test_spec_serial_equals_simulator_serial(self):
        policy = tier_splitting_policy(N, F, LAM, MU)
        a = splitting_probability(
            Simulator(tier_model(), base_seed=42), T, policy, n_roots=40
        )
        b = splitting_probability(tier_spec(42), T, policy, n_roots=40)
        assert a.samples == b.samples

    def test_repeat_runs_identical(self):
        policy = tier_splitting_policy(N, F, LAM, MU)
        runs = [
            splitting_probability(
                Simulator(tier_model(), base_seed=7), T, policy, n_roots=30
            )
            for _ in range(2)
        ]
        assert runs[0].samples == runs[1].samples

    def test_brute_force_is_replicate_runs_bit_for_bit(self):
        """Splitting disabled routes literally through replicate_runs."""
        model = tier_model()
        bf = brute_force_probability(
            Simulator(model, base_seed=5),
            T,
            tier_level(),
            float(F + 1),
            n_replications=60,
        )
        fn = tier_level().resolve(model)
        ref = replicate_runs(
            Simulator(model, base_seed=5),
            T,
            n_replications=60,
            extra_metrics={
                "rare_event": lambda res: (
                    1.0 if fn(res._final_values) >= F + 1 else 0.0
                )
            },
        )
        assert list(bf.samples) == ref.samples("rare_event")
        assert bf.n_hits == int(sum(bf.samples))

    def test_weight_conservation_in_tree(self):
        """Per-root contributions stay in [0, 1]: region weights never
        exceed the root's weight."""
        est = splitting_probability(
            Simulator(tier_model(), base_seed=13),
            T,
            tier_splitting_policy(N, F, LAM, MU),
            n_roots=50,
        )
        assert all(0.0 <= s <= 1.0 + 1e-12 for s in est.samples)
        assert math.isclose(
            est.probability,
            sum(est.samples) / len(est.samples),
            rel_tol=1e-12,
        )

    def test_max_segments_guard(self):
        policy = tier_splitting_policy(N, F, LAM, MU, max_segments=2)
        with pytest.raises(SimulationError, match="max_segments"):
            splitting_probability(
                Simulator(tier_model(), base_seed=42), T, policy, n_roots=40
            )


class TestAdaptiveStopping:
    def test_disabled_is_byte_identical(self):
        a = replicate_runs(
            Simulator(tier_model(), base_seed=9),
            T,
            n_replications=30,
            rewards=lost_reward(),
        )
        b = replicate_runs(
            Simulator(tier_model(), base_seed=9),
            T,
            n_replications=30,
            rewards=lost_reward(),
            stopping=None,
        )
        assert a.samples("lost") == b.samples("lost")

    def test_never_satisfied_rule_equals_plain_run(self):
        """A rule that cannot be satisfied runs to the cap and matches
        the fixed-count study float-for-float."""
        rule = StoppingRule(rel_ci=1e-12, metrics=("lost",))
        adaptive = replicate_runs(
            Simulator(tier_model(), base_seed=9),
            T,
            n_replications=30,
            rewards=lost_reward(),
            stopping=rule,
        )
        plain = replicate_runs(
            Simulator(tier_model(), base_seed=9),
            T,
            n_replications=30,
            rewards=lost_reward(),
        )
        assert adaptive.samples("lost") == plain.samples("lost")

    def test_serial_equals_any_n_jobs(self):
        rule = StoppingRule(
            rel_ci=0.4, metrics=("lost",), min_replications=16, batch=8
        )
        serial = replicate_runs(
            Simulator(tier_model(), base_seed=9),
            T,
            n_replications=128,
            rewards=lost_reward(),
            stopping=rule,
        )
        for jobs in (2, 3):
            par = replicate_runs(
                Simulator(tier_model(), base_seed=9),
                T,
                n_replications=128,
                rewards=lost_reward(),
                stopping=rule,
                n_jobs=jobs,
                spec=tier_spec(9),
            )
            assert par.samples("lost") == serial.samples("lost")
            assert par.n_replications == serial.n_replications

    def test_adaptive_splitting_serial_equals_parallel(self):
        rule = StoppingRule(rel_ci=0.25, min_replications=16, batch=8)
        policy = tier_splitting_policy(N, F, LAM, MU)
        serial = splitting_probability(
            Simulator(tier_model(), base_seed=7),
            T,
            policy,
            n_roots=200,
            stopping=rule,
        )
        par = splitting_probability(
            tier_spec(7), T, policy, n_roots=200, stopping=rule, n_jobs=3
        )
        assert par.samples == serial.samples
        assert par.n_roots == serial.n_roots
        # The rule actually stopped the study before the cap.
        assert serial.n_roots < 200

    def test_run_counter_advances_by_stopped_count(self):
        """Back-to-back adaptive studies on one simulator use disjoint
        replication streams, exactly like fixed-count studies."""
        sim = Simulator(tier_model(), base_seed=9)
        rule = StoppingRule(
            rel_ci=0.4, metrics=("lost",), min_replications=16, batch=8
        )
        first = replicate_runs(
            sim, T, n_replications=64, rewards=lost_reward(), stopping=rule
        )
        second = replicate_runs(
            sim, T, n_replications=64, rewards=lost_reward(), stopping=rule
        )
        # Second study continues the counter: replication 0 of study 2
        # uses stream k = n_done, so its samples differ from study 1.
        assert first.samples("lost") != second.samples("lost")


class TestSweepIntegration:
    def test_adaptive_cell_serial_equals_parallel(self):
        rule = StoppingRule(
            rel_ci=0.4, metrics=("lost",), min_replications=16, batch=8
        )
        cells = [
            replication_cell(
                ("tier", seed), tier_spec(seed), T, 64, stopping=rule
            )
            for seed in (1, 2, 3)
        ]

        def rebuilt():
            return [
                replication_cell(
                    ("tier", seed), tier_spec(seed), T, 64, stopping=rule
                )
                for seed in (1, 2, 3)
            ]

        serial = run_sweep(cells, n_jobs=1)
        parallel = run_sweep(rebuilt(), n_jobs=3)
        for seed in (1, 2, 3):
            a = serial[("tier", seed)]
            b = parallel[("tier", seed)]
            assert a.samples("lost") == b.samples("lost")
            assert a.n_replications == b.n_replications

    def test_adaptive_cell_checkpoint_resume_identical(self, tmp_path):
        rule = StoppingRule(
            rel_ci=0.4, metrics=("lost",), min_replications=16, batch=8
        )

        def cells():
            return [
                replication_cell(
                    ("tier", seed), tier_spec(seed), T, 64, stopping=rule
                )
                for seed in (1, 2)
            ]

        ckpt = str(tmp_path / "journal")
        first = run_sweep(cells(), n_jobs=1, checkpoint_dir=ckpt)
        resumed = run_sweep(cells(), n_jobs=1, checkpoint_dir=ckpt)
        for seed in (1, 2):
            assert (
                first[("tier", seed)].samples("lost")
                == resumed[("tier", seed)].samples("lost")
            )
            assert (
                first[("tier", seed)].n_replications
                == resumed[("tier", seed)].n_replications
            )

    def test_digest_excludes_jobs_but_not_stopping(self):
        rule = StoppingRule(rel_ci=0.4, metrics=("lost",))
        plain = replication_cell("k", tier_spec(1), T, 64)
        plain_jobs = replication_cell("k", tier_spec(1), T, 64, n_jobs=4)
        adaptive = replication_cell("k", tier_spec(1), T, 64, stopping=rule)
        # Inner worker split never invalidates a checkpoint...
        assert cell_digest(plain) == cell_digest(plain_jobs)
        # ...but a stopping rule changes the result, hence the digest.
        assert cell_digest(plain) != cell_digest(adaptive)


class TestStoppingRule:
    def test_validation(self):
        with pytest.raises(SimulationError):
            StoppingRule(rel_ci=0.0)
        with pytest.raises(SimulationError):
            StoppingRule(rel_ci=0.1, confidence=1.0)
        with pytest.raises(SimulationError):
            StoppingRule(rel_ci=0.1, batch=0)
        with pytest.raises(SimulationError):
            StoppingRule(rel_ci=0.1, min_replications=0)

    def test_round_schedule_is_deterministic_and_caps(self):
        rule = StoppingRule(rel_ci=0.1, min_replications=16, batch=4)
        assert rule.first_round(100) == 16
        assert rule.first_round(10) == 10
        n, rounds = 0, []
        while True:
            r = rule.next_round(n, 23)
            if r == 0:
                break
            rounds.append(r)
            n += r
        assert sum(rounds) == 23
        assert rounds[0] == 16
        assert all(r <= 4 for r in rounds[1:])

    def test_satisfied_semantics(self):
        rule = StoppingRule(rel_ci=0.5, metrics=("m",), min_replications=4, batch=2)
        # Constant samples: zero half-width counts as satisfied.
        assert rule.satisfied({"m": [1.0] * 8})
        # Zero mean with batch-level spread: relative target unreachable.
        assert not rule.satisfied({"m": [3.0, -1.0, -3.0, 1.0, 2.0, -2.0, -1.0, 1.0]})
        with pytest.raises(SimulationError, match="unknown"):
            rule.satisfied({"other": [1.0] * 8})
