"""Fast-path coverage: the paper workloads must stay on the compiled path.

A model can silently fall off the inlined fast loops — an un-annotated
gate drops its activity back to Python gate functions, a distribution
change drops its draws back to per-draw sampling, an accidental observer
pushes a run onto the reference loop.  None of that is a correctness
bug, so without these assertions it would regress performance quietly.
This suite pins, for the ABE and petascale cluster models:

* which event loop a measured run dispatches to (``Simulator.last_loop``),
* the exact residue of activities *without* gate-write kernels
  (``fastpath_report``) — grows only if an annotation is dropped,
* the runtime kernel-vs-python completion counters,
* the sampling mode of every timed activity.

CI runs this file on every push (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import pytest

from repro.cfs import ClusterModel, abe_parameters, petascale_parameters

#: Template-level activity names that legitimately keep Python gate
#: functions: case-bearing completions (propagation coins) and the
#: conditional tier-restore effect.  Anything beyond this set failing to
#: compile a kernel is an unannotated gate.
EXPECTED_PYTHON_RESIDUE = {
    "fail",       # disk / fail-over member: probabilistic cases
    "absorb_kill",  # propagated-fault absorption: probabilistic cases
    "restore",    # tier restore: effect conditional on failed_count
}


def _residue_names(report) -> set[str]:
    return {path.rsplit("/", 1)[-1] for path in report["python_effect_activities"]}


@pytest.fixture(scope="module", params=["abe", "petascale"])
def cluster(request):
    params = (
        abe_parameters() if request.param == "abe" else petascale_parameters()
    )
    return ClusterModel(params, base_seed=2008)


class TestCompiledCoverage:
    def test_python_effect_residue_is_exactly_the_known_set(self, cluster):
        report = cluster.simulator.fastpath_report()
        residue = _residue_names(report)
        assert residue == EXPECTED_PYTHON_RESIDUE, (
            "activities fell off the gate-write kernel path: "
            f"{sorted(residue - EXPECTED_PYTHON_RESIDUE)}"
        )
        # every repair/bookkeeping completion in the model has a kernel
        # (the runtime majority check lives in
        # test_measured_run_uses_observed_fast_loop: events, not
        # activity counts, decide what is hot)
        assert len(report["kernel_activities"]) > 0

    def test_every_timed_draw_is_served_fast(self, cluster):
        """No static law may fall back to scalar per-draw sampling."""
        report = cluster.simulator.fastpath_report()
        assert report["sample_batch"] is not None
        assert report["batch_dynamic"] is True
        slow = [
            path
            for path, kind in report["sampling"].items()
            if kind == "scalar"
        ]
        assert slow == [], f"per-draw sampling crept back in: {slow}"
        kinds = set(report["sampling"].values())
        assert kinds == {"const", "batched", "dynamic"}

    def test_measured_run_uses_observed_fast_loop(self, cluster):
        sim = cluster.simulator
        res = sim.run(700.0, rewards=cluster.measures.rewards)
        assert sim.last_loop == "observed"
        assert sim.last_kernel_effects + sim.last_python_effects == res.n_events
        # kernels carry the bulk of completions on the paper workloads
        assert sim.last_kernel_effects > sim.last_python_effects

    def test_reference_engine_is_opt_in_only(self, cluster):
        assert cluster.simulator.engine == "auto"
