"""Fast-path coverage: the paper workloads must stay on the compiled path.

A model can silently fall off the inlined fast loops — an un-annotated
gate drops its activity back to Python gate functions, a distribution
change drops its draws back to per-draw sampling, an accidental observer
pushes a run onto the reference loop.  None of that is a correctness
bug, so without these assertions it would regress performance quietly.
This suite pins, for the ABE and petascale cluster models:

* which event loop a measured run dispatches to (``Simulator.last_loop``),
* that **every** activity carries a compiled kernel — gate-write or
  case/guard — i.e. ``python_effect_activities`` is empty (since PR 5's
  case kernels closed the last residue: the propagation coins and the
  conditional tier restore),
* the runtime kernel / case-kernel / python completion counters,
* the sampling mode of every timed activity,
* that **every** rate reward of a measured run declares a compiled form
  — ``python_refresh_rewards`` is empty (since PR 7's reward kernels) —
  so a new or edited cluster measure without a declared form fails CI
  instead of silently re-calling its Python expression per event.

CI runs this file on every push (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import pytest

from repro.cfs import ClusterModel, abe_parameters, petascale_parameters

#: Template-level activity names expected on the case/guard-kernel path
#: (probabilistic propagation coins + the guarded tier restore); every
#: other activity must compile a plain gate-write kernel.
EXPECTED_CASE_KERNELS = {
    "fail",       # disk / fail-over member: propagation-coin cases
    "absorb_kill",  # propagated-fault absorption: probabilistic cases
    "restore",    # tier restore: writes guarded by failed_count
}


def _residue_names(report) -> set[str]:
    return {path.rsplit("/", 1)[-1] for path in report["python_effect_activities"]}


@pytest.fixture(scope="module", params=["abe", "petascale"])
def cluster(request):
    params = (
        abe_parameters() if request.param == "abe" else petascale_parameters()
    )
    return ClusterModel(params, base_seed=2008)


class TestCompiledCoverage:
    def test_zero_python_effect_activities(self, cluster):
        """Every completion in the paper models is compiled: gate-write
        kernels for the unconditional effects, case/guard kernels for
        the propagation coins and the conditional tier restore."""
        report = cluster.simulator.fastpath_report()
        assert report["python_effect_activities"] == [], (
            "activities fell off the compiled kernel paths: "
            f"{sorted(_residue_names(report))}"
        )
        assert len(report["kernel_activities"]) > 0
        case_names = {
            path.rsplit("/", 1)[-1]
            for path in report["case_kernel_activities"]
        }
        assert case_names == EXPECTED_CASE_KERNELS, (
            "unexpected case-kernel set: "
            f"{sorted(case_names ^ EXPECTED_CASE_KERNELS)}"
        )

    def test_every_timed_draw_is_served_fast(self, cluster):
        """No static law may fall back to scalar per-draw sampling."""
        report = cluster.simulator.fastpath_report()
        assert report["sample_batch"] is not None
        assert report["batch_dynamic"] is True
        slow = [
            path
            for path, kind in report["sampling"].items()
            if kind == "scalar"
        ]
        assert slow == [], f"per-draw sampling crept back in: {slow}"
        kinds = set(report["sampling"].values())
        assert kinds == {"const", "batched", "dynamic"}

    def test_measured_run_uses_observed_fast_loop(self, cluster):
        sim = cluster.simulator
        res = sim.run(700.0, rewards=cluster.measures.rewards)
        assert sim.last_loop == "observed"
        # Every rate reward of the paper measure set must compile its
        # declared form into an incremental update kernel — an
        # undeclared reward form here is a CI failure, not a silent
        # per-event Python refresh.
        report = sim.fastpath_report()
        assert report["python_refresh_rewards"] == [], (
            "rate rewards fell back to per-event Python refresh: "
            f"{report['python_refresh_rewards']}"
        )
        assert report["reward_kernel_rewards"] == [
            "cfs_availability",
            "perceived_availability",
            "storage_availability",
        ]
        assert (
            sim.last_kernel_effects
            + sim.last_case_kernels
            + sim.last_python_effects
            == res.n_events
        )
        # kernels carry the bulk of completions on the paper workloads;
        # the only python effects left are one-shot verification firings
        # (per activity instance / case branch, persistent across runs)
        first_python = sim.last_python_effects
        assert sim.last_kernel_effects > first_python
        # on the warm program, only first-ever completions still verify:
        # the python-effect count burns down run over run instead of
        # repaying the full verification cost
        res2 = sim.run(700.0, rewards=cluster.measures.rewards)
        assert sim.last_python_effects < first_python
        assert (
            sim.last_kernel_effects
            + sim.last_case_kernels
            + sim.last_python_effects
            == res2.n_events
        )

    def test_reference_engine_is_opt_in_only(self, cluster):
        assert cluster.simulator.engine == "auto"
