"""Experiment layer (estimates, replication), RNG streams, path globs."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    Estimate,
    ImpulseReward,
    RateReward,
    SeedTree,
    SimulationError,
    Simulator,
    derive_seed,
    flatten,
    make_generator,
    replicate_runs,
)
from repro.core.patterns import compile_pattern, path_match

from _helpers import build_two_state_san


class TestEstimate:
    def test_from_samples_basic(self):
        est = Estimate.from_samples([1.0, 2.0, 3.0, 4.0])
        assert est.mean == pytest.approx(2.5)
        assert est.n == 4
        assert est.lo < 2.5 < est.hi

    def test_single_sample_infinite_halfwidth(self):
        est = Estimate.from_samples([2.0])
        assert math.isinf(est.half_width)
        assert "n=1" in str(est)

    def test_identical_samples_zero_halfwidth(self):
        est = Estimate.from_samples([3.0, 3.0, 3.0])
        assert est.half_width == 0.0

    def test_contains(self):
        est = Estimate.from_samples([1.0, 2.0, 3.0])
        assert est.contains(2.0)
        assert not est.contains(100.0)

    def test_zero_samples_rejected(self):
        with pytest.raises(SimulationError):
            Estimate.from_samples([])

    def test_coverage_of_known_mean(self):
        # ~95% of intervals should contain the true mean; check loosely.
        rng = np.random.default_rng(0)
        hits = 0
        trials = 200
        for _ in range(trials):
            est = Estimate.from_samples(rng.normal(5.0, 1.0, size=12))
            hits += est.contains(5.0)
        assert hits / trials > 0.85

    def test_str_format(self):
        est = Estimate.from_samples([1.0, 2.0, 3.0])
        assert "95% CI" in str(est)


class TestReplicateRuns:
    def test_replications_independent_and_summarized(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=1)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = replicate_runs(sim, 5_000.0, n_replications=5, rewards=[rw])
        assert res.n_replications == 5
        assert len(set(res.samples("a"))) == 5  # independent streams

    def test_impulse_metrics_included(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=2)
        imp = ImpulseReward("f", "comp/fail")
        res = replicate_runs(sim, 5_000.0, n_replications=3, rewards=[imp])
        assert "f" in res.metrics and "f.per_hour" in res.metrics

    def test_extra_metrics(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=3)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = replicate_runs(
            sim,
            5_000.0,
            n_replications=3,
            rewards=[rw],
            extra_metrics={"u": lambda r: 1.0 - r["a"].time_average},
        )
        assert res.estimate("u").mean == pytest.approx(
            1.0 - res.estimate("a").mean
        )

    def test_extra_metric_shadowing_rejected(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=4)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        with pytest.raises(SimulationError, match="shadow"):
            replicate_runs(
                sim, 100.0, n_replications=2, rewards=[rw],
                extra_metrics={"a": lambda r: 0.0},
            )

    def test_on_result_callback(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=5)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        seen = []
        replicate_runs(
            sim, 100.0, n_replications=3, rewards=[rw],
            on_result=lambda k, r: seen.append(k),
        )
        assert seen == [0, 1, 2]

    def test_unknown_metric_lookup(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=6)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = replicate_runs(sim, 100.0, n_replications=2, rewards=[rw])
        with pytest.raises(KeyError):
            res.samples("nope")

    def test_no_metrics_rejected(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=7)
        with pytest.raises(SimulationError, match="no metrics"):
            replicate_runs(sim, 100.0, n_replications=2)


class TestSeedTree:
    def test_same_path_same_stream(self):
        a = SeedTree(42).child("rep", 3).generator().uniform()
        b = SeedTree(42).child("rep", 3).generator().uniform()
        assert a == b

    def test_sibling_streams_differ(self):
        a = SeedTree(42).child("rep", 0).generator().uniform()
        b = SeedTree(42).child("rep", 1).generator().uniform()
        assert a != b

    def test_string_keys_stable(self):
        a = derive_seed(1, "alpha").generate_state(2)
        b = derive_seed(1, "alpha").generate_state(2)
        assert (a == b).all()

    def test_children_iterator(self):
        kids = list(SeedTree(7).children("rep", 3))
        assert len(kids) == 3
        assert kids[0].path == ("rep", 0)

    def test_make_generator_independent_paths(self):
        x = make_generator(5, "a").uniform()
        y = make_generator(5, "b").uniform()
        assert x != y


class TestPathGlobs:
    def test_brackets_are_literal(self):
        assert path_match("tier[3]/disk[7]/fail", "tier[*]/disk[*]/fail")
        assert not path_match("tier3/disk7/fail", "tier[*]/disk[*]/fail")

    def test_star_crosses_slashes(self):
        assert path_match("a/b/c/d", "a/*/d")

    def test_question_mark(self):
        assert path_match("ab", "a?")
        assert not path_match("abc", "a?")

    def test_anchored(self):
        assert not path_match("xab", "ab")
        assert not path_match("abx", "ab")

    def test_compile_cached(self):
        assert compile_pattern("a*") is compile_pattern("a*")

    def test_regex_specials_escaped(self):
        assert path_match("a.b", "a.b")
        assert not path_match("axb", "a.b")
