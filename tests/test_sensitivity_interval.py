"""Design-space sensitivity analysis and CTMC interval rewards."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cfs import DESIGN_KNOBS, abe_parameters, tornado
from repro.core import (
    ModelError,
    ParameterError,
    RateReward,
    Simulator,
    explore,
    flatten,
)
from repro.markov import CTMC

from _helpers import build_two_state_san


class TestIntervalReward:
    def test_matches_closed_form_two_state(self):
        lam, mu = 0.05, 0.5
        chain = CTMC(2).add_rate(0, 1, lam).add_rate(1, 0, mu)
        for t in (0.5, 5.0, 100.0):
            est = chain.interval_reward(0, t, [1.0, 0.0])
            a = mu / (lam + mu)
            b = lam / (lam + mu)
            s = lam + mu
            exact = a + b * (1.0 - math.exp(-s * t)) / (s * t)
            assert est == pytest.approx(exact, abs=1e-9)

    def test_long_interval_approaches_steady_state(self):
        chain = CTMC(2).add_rate(0, 1, 0.1).add_rate(1, 0, 0.9)
        pi_up = chain.steady_state()[0]
        assert chain.interval_reward(0, 10_000.0, [1.0, 0.0]) == pytest.approx(
            pi_up, abs=1e-3
        )

    def test_short_interval_stays_near_initial(self):
        chain = CTMC(2).add_rate(0, 1, 0.1).add_rate(1, 0, 0.9)
        assert chain.interval_reward(0, 1e-4, [1.0, 0.0]) == pytest.approx(
            1.0, abs=1e-4
        )

    def test_validation(self):
        chain = CTMC(2).add_rate(0, 1, 1.0).add_rate(1, 0, 1.0)
        with pytest.raises(ModelError):
            chain.interval_reward(0, 0.0, [1.0, 0.0])
        with pytest.raises(ModelError):
            chain.interval_reward(0, 1.0, [1.0])

    def test_matches_simulated_interval_availability(self, two_state_model):
        """The CTMC interval reward is what a warmup-free simulation run
        over [0, T] estimates."""
        ss = explore(two_state_model)
        r = ss.reward_vector(lambda m: float(m["comp/up"]))
        exact = ss.to_ctmc().interval_reward(0, 500.0, r)

        from repro.core import replicate_runs

        sim = Simulator(two_state_model, base_seed=31)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = replicate_runs(sim, 500.0, n_replications=40, rewards=[rw])
        est = res.estimate("a")
        assert abs(est.mean - exact) < max(3 * est.half_width, 0.01)


class TestTornado:
    @pytest.fixture(scope="class")
    def result(self):
        # Short windows: we test structure and gross ordering, not precision.
        return tornado(
            abe_parameters(),
            hours=4380.0,
            n_replications=3,
            base_seed=55,
        )

    def test_all_knobs_present(self, result):
        assert len(result.entries) == len(DESIGN_KNOBS)
        names = {e.name for e in result.entries}
        assert "san_fabric_failures_per_720h" in names

    def test_ranked_descending(self, result):
        swings = [e.swing for e in result.ranked()]
        assert swings == sorted(swings, reverse=True)

    def test_fabric_rate_moves_availability(self, result):
        fabric = next(
            e for e in result.entries if e.name == "san_fabric_failures_per_720h"
        )
        # 0.5 vs 2.0 events/month at ~12 h each: ~2.5% availability swing
        assert fabric.swing > 0.005

    def test_disk_knobs_negligible_at_abe(self, result):
        """The paper's point: disks are NOT the availability bottleneck."""
        disk = next(e for e in result.entries if e.name == "disk_mtbf_hours")
        fabric = next(
            e for e in result.entries if e.name == "san_fabric_failures_per_720h"
        )
        assert disk.swing < fabric.swing

    def test_format(self, result):
        text = result.format()
        assert "baseline cfs_availability" in text
        assert "swing" in text

    def test_validation(self):
        with pytest.raises(ParameterError):
            tornado(abe_parameters(), n_replications=1)
