"""Survival analysis: Kaplan-Meier and censored Weibull/exponential MLE."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    KaplanMeier,
    fit_exponential_censored,
    fit_weibull_censored,
)
from repro.core import FitError, Weibull, make_generator


def censored_sample(shape: float, mtbf: float, n: int, censor_hi: float, seed: int):
    rng = make_generator(seed)
    law = Weibull.from_mtbf(shape, mtbf)
    life = law.sample_many(rng, n)
    censor = rng.uniform(0.0, censor_hi, n)
    observed = life <= censor
    durations = np.minimum(life, censor)
    return durations, observed


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        t = [1.0, 2.0, 3.0, 4.0]
        km = KaplanMeier(t, [True] * 4)
        assert km.survival(2.5) == pytest.approx(0.5)
        assert km.survival(0.5) == 1.0
        assert km.survival(4.0) == pytest.approx(0.0)

    def test_censoring_reduces_at_risk(self):
        # unit censored at 1.5 leaves 2 at risk for the event at 2.0
        km = KaplanMeier([1.0, 1.5, 2.0, 3.0], [True, False, True, True])
        assert km.survival(2.5) == pytest.approx(0.75 * 0.5)

    def test_median(self):
        km = KaplanMeier([1.0, 2.0, 3.0, 4.0], [True] * 4)
        assert km.median() == 2.0

    def test_median_unreached(self):
        km = KaplanMeier([1.0, 2.0, 3.0, 4.0], [True, False, False, False])
        assert km.median() == np.inf

    def test_recovers_true_survival(self):
        durations, observed = censored_sample(0.7, 1000.0, 4000, 3000.0, 5)
        km = KaplanMeier(durations, observed)
        true = Weibull.from_mtbf(0.7, 1000.0)
        for t in (100.0, 500.0, 1500.0):
            assert km.survival(t) == pytest.approx(true.survival(t), abs=0.05)

    def test_input_validation(self):
        with pytest.raises(FitError):
            KaplanMeier([], [])
        with pytest.raises(FitError):
            KaplanMeier([1.0], [True, False])
        with pytest.raises(FitError):
            KaplanMeier([-1.0], [True])


class TestWeibullMLE:
    def test_recovers_parameters_large_sample(self):
        durations, observed = censored_sample(0.7, 1000.0, 6000, 4000.0, 7)
        fit = fit_weibull_censored(durations, observed)
        assert fit.shape == pytest.approx(0.7, abs=0.05)
        assert fit.mtbf_hours == pytest.approx(1000.0, rel=0.15)
        assert fit.n_events == int(np.asarray(observed).sum())

    def test_ci_covers_truth(self):
        hits = 0
        for seed in range(20):
            durations, observed = censored_sample(0.7, 1000.0, 400, 3000.0, seed)
            fit = fit_weibull_censored(durations, observed)
            lo, hi = fit.shape_confidence_interval()
            hits += lo <= 0.7 <= hi
        assert hits >= 16  # ~95% coverage, allow slack

    def test_exponential_data_gives_shape_one(self):
        durations, observed = censored_sample(1.0, 500.0, 5000, 2000.0, 9)
        fit = fit_weibull_censored(durations, observed)
        assert fit.shape == pytest.approx(1.0, abs=0.06)

    def test_increasing_hazard_detected(self):
        durations, observed = censored_sample(2.0, 100.0, 3000, 400.0, 11)
        fit = fit_weibull_censored(durations, observed)
        assert fit.shape == pytest.approx(2.0, abs=0.15)

    def test_small_sample_table4_regime(self):
        # The paper's regime: ~480 units, few failures, heavy censoring.
        durations, observed = censored_sample(0.7, 300_000.0, 480, 6000.0, 13)
        if not observed.any():
            pytest.skip("no failures in draw")
        fit = fit_weibull_censored(durations, observed)
        lo, hi = fit.shape_confidence_interval()
        assert lo < 0.7 < hi  # wide interval but should bracket truth
        assert fit.se_log_shape > 0.05  # genuinely uncertain

    def test_all_censored_rejected(self):
        with pytest.raises(FitError, match="no failures"):
            fit_weibull_censored([1.0, 2.0], [False, False])

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(FitError):
            fit_weibull_censored([0.0, 1.0], [True, True])

    def test_distribution_accessor(self):
        durations, observed = censored_sample(0.7, 1000.0, 2000, 4000.0, 15)
        fit = fit_weibull_censored(durations, observed)
        law = fit.distribution()
        assert law.shape == pytest.approx(fit.shape)


class TestExponentialFit:
    def test_closed_form(self):
        durations = [10.0, 20.0, 30.0, 40.0]
        observed = [True, True, False, False]
        fit = fit_exponential_censored(durations, observed)
        assert fit.rate == pytest.approx(2.0 / 100.0)
        assert fit.mtbf_hours == pytest.approx(50.0)
        assert fit.n_events == 2

    def test_afr(self):
        fit = fit_exponential_censored([8760.0] * 99 + [1.0], [False] * 99 + [True])
        assert fit.afr == pytest.approx(8760.0 * fit.rate)

    def test_recovers_rate(self):
        durations, observed = censored_sample(1.0, 300.0, 4000, 1000.0, 17)
        fit = fit_exponential_censored(durations, observed)
        assert fit.mtbf_hours == pytest.approx(300.0, rel=0.08)


@given(
    shape=st.sampled_from([0.6, 0.8, 1.0, 1.5]),
    seed=st.integers(0, 200),
)
@settings(max_examples=12, deadline=None)
def test_mle_bracket_property(shape: float, seed: int):
    """The 3-sigma log-shape interval should almost always bracket truth."""
    durations, observed = censored_sample(shape, 500.0, 1500, 1800.0, seed)
    fit = fit_weibull_censored(durations, observed)
    import math

    lo = fit.shape * math.exp(-4 * fit.se_log_shape)
    hi = fit.shape * math.exp(4 * fit.se_log_shape)
    assert lo < shape < hi
